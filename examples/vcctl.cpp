// vcctl — command-line front end to a persistent VisualCloud store, the
// scriptable equivalent of the demonstration GUI: ingest content, inspect
// the catalog, emit manifests, and run streaming sessions with every knob
// the demo exposed (approach, predictor, tiling, bandwidth, viewer type).
//
//   vcctl                                # canned end-to-end demo
//   vcctl ingest <scene> <name> [tilesRxC] [seconds]
//   vcctl ls
//   vcctl describe <name>
//   vcctl manifest <name>
//   vcctl query '<expr>' [explain]       # declarative query layer
//   vcctl query --standing '<expr>'      # standing query: per-segment replay
//   vcctl view create <name> '<expr>'    # materialized view + maintenance
//   vcctl view list
//   vcctl view refresh <name>
//   vcctl stream <name> [approach] [predictor] [mbps] [archetype]
//   vcctl serve-sim <name> [viewers] [slots] [budget_mbps] [faults/min]
//   vcctl live-sim <scene> <name> [viewers] [seconds] [encode_ms] [lag_ms]
//   vcctl metrics [name] [json|csv]      # subsystem counters snapshot
//   vcctl export <name> <file> [quality]
//   vcctl drop <name>
//   vcctl help
//
// Global flags (any command): --io-threads N sizes the store's async cell
// I/O pool; --prefetch {off,predict,popularity} turns on speculative cell
// loading in serve-sim (needs --io-threads > 0); --nodes N runs serve-sim
// as an N-node cluster over a consistent-hash sharded store, with
// --l1-bytes sizing each node's private cache and --l2-bytes the shared
// second tier.
//
// The store lives in $VCCTL_ROOT (default /tmp/visualcloud-store).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/export.h"
#include "core/session.h"
#include "core/visualcloud.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "query/executor.h"
#include "query/parser.h"
#include "view/catalog.h"
#include "view/maintainer.h"
#include "server/cluster_server.h"
#include "server/live_feed.h"
#include "server/streaming_server.h"
#include "storage/sharded_store.h"
#include "streaming/manifest.h"
#include "predict/trace_synthesizer.h"

namespace {

using namespace vc;

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage: vcctl [global flags] <command> [args]\n"
      "\n"
      "commands:\n"
      "  (none)                        canned end-to-end demo\n"
      "  ingest <scene> <name> [RxC] [seconds]\n"
      "                                synthesize and ingest a 360-degree scene\n"
      "                                (tiles default 4x8, duration 10s)\n"
      "  ls                            list catalog videos\n"
      "  describe <name>               layout, ladder, and versions of a video\n"
      "  manifest <name>               print the VCMPD streaming manifest\n"
      "  query <expr> [explain]        run a declarative query; 'explain' prints\n"
      "                                the optimized plan without executing.\n"
      "                                e.g. \"scan(demo) | timeslice(0,2) |\n"
      "                                viewport(90,90,100,80) | quality(high)\"\n"
      "                                fresh materialized views are offered to\n"
      "                                the optimizer automatically\n"
      "  query --standing <expr>       register a standing query (expr ends in\n"
      "                                subscribe(<name>)) and replay the\n"
      "                                catalog through it, one deterministic\n"
      "                                result per committed segment\n"
      "  view create <name> <expr>     define + materialize view <name>; expr\n"
      "                                sinks into store(<name>), e.g.\n"
      "                                \"scan(demo) | quality(high) | encode |\n"
      "                                store(best)\"\n"
      "  view list                     views, sources, freshness\n"
      "  view refresh <name>           full recompute of a (stale) view\n"
      "  stream <name> [approach] [predictor] [mbps] [archetype]\n"
      "                                simulate one streaming session\n"
      "                                (approach: monolithic, uniform_dash,\n"
      "                                visualcloud, oracle)\n"
      "  serve-sim <name> [viewers] [slots] [budget_mbps] [faults/min]\n"
      "                                multi-viewer server simulation\n"
      "  live-sim <scene> <name> [viewers] [seconds] [encode_ms] [lag_ms]\n"
      "                                live broadcast: ingest the scene\n"
      "                                segment-by-segment while viewers join\n"
      "                                at the live edge; lag_ms > 0 enables\n"
      "                                encoder degradation under that budget\n"
      "  metrics [name] [json|csv]     subsystem counters snapshot (with a\n"
      "                                name: runs a session and a query first\n"
      "                                so the counters are live)\n"
      "  export <name> <file> [quality]\n"
      "                                monolithic no-transcode export\n"
      "  drop <name>                   remove a video and all versions\n"
      "  help                          this text\n"
      "\n"
      "global flags:\n"
      "  --io-threads N                async cell-load I/O pool size (default\n"
      "                                0: synchronous reads)\n"
      "  --prefetch {off,predict,popularity}\n"
      "                                speculative cell loading in serve-sim\n"
      "                                (needs --io-threads > 0)\n"
      "  --nodes N                     run serve-sim as an N-node cluster over\n"
      "                                a consistent-hash sharded store (one\n"
      "                                backend shard per node; default 1:\n"
      "                                single-node server)\n"
      "  --l1-bytes N                  per-node private cache capacity in the\n"
      "                                cluster (default 16 MiB)\n"
      "  --l2-bytes N                  cluster-shared L2 cache capacity\n"
      "                                (default 256 MiB)\n"
      "\n"
      "store root: $VCCTL_ROOT (default /tmp/visualcloud-store)\n",
      out);
}

std::string StoreRoot() {
  const char* root = std::getenv("VCCTL_ROOT");
  return root != nullptr ? root : "/tmp/visualcloud-store";
}

std::unique_ptr<VisualCloud> OpenStore(int io_threads) {
  VisualCloudOptions options;
  options.storage.root = StoreRoot();
  options.storage.io_threads = io_threads;
  auto db = VisualCloud::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "vcctl: cannot open store at %s: %s\n",
                 StoreRoot().c_str(), db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*db);
}

[[noreturn]] void Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "vcctl: %s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

int CmdIngest(VisualCloud* db, const std::string& scene_name,
              const std::string& video_name, const std::string& tiles,
              int seconds) {
  SceneOptions scene_options;
  scene_options.width = 256;
  scene_options.height = 128;
  auto scene = MakeScene(scene_name, scene_options);
  if (!scene.ok()) Fail(scene.status(), "scene");

  IngestOptions ingest;
  ingest.frames_per_segment = 15;
  ingest.fps = 15.0;
  if (std::sscanf(tiles.c_str(), "%dx%d", &ingest.tile_rows,
                  &ingest.tile_cols) != 2) {
    std::fprintf(stderr, "vcctl: bad tile spec '%s' (want RxC)\n",
                 tiles.c_str());
    return 1;
  }
  auto version = db->IngestScene(video_name, **scene, seconds * 15, ingest);
  if (!version.ok()) Fail(version.status(), "ingest");
  auto metadata = db->Describe(video_name);
  std::printf("ingested '%s' v%u: %ds, %s tiles, %d qualities, %.1f KB\n",
              video_name.c_str(), *version, seconds, tiles.c_str(),
              metadata->quality_count(), metadata->TotalBytes() / 1024.0);

  // The metrics registry is per-process, so this invocation is the only
  // chance to see the ingest-side counters (a later `vcctl metrics` starts
  // from zero). Print the ingest/codec subset.
  MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  std::printf("-- ingest metrics --\n");
  for (const auto& [metric, value] : snapshot.counters) {
    if (metric.rfind("ingest.", 0) == 0 || metric.rfind("codec.", 0) == 0) {
      std::printf("%-28s %llu\n", metric.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  for (const auto& [metric, histogram] : snapshot.histograms) {
    if (metric.rfind("ingest.", 0) == 0) {
      std::printf("%-28s count %llu mean %.4fs p95 %.4fs\n", metric.c_str(),
                  static_cast<unsigned long long>(histogram.count),
                  histogram.Mean(), histogram.Percentile(0.95));
    }
  }
  return 0;
}

int CmdLs(VisualCloud* db) {
  auto videos = db->List();
  if (!videos.ok()) Fail(videos.status(), "list");
  if (videos->empty()) {
    std::printf("(catalog empty — try: vcctl ingest venice myvideo)\n");
    return 0;
  }
  std::printf("%-20s %8s %9s %7s %7s %10s\n", "name", "version", "duration",
              "tiles", "rungs", "stored");
  for (const std::string& name : *videos) {
    auto metadata = db->Describe(name);
    if (!metadata.ok()) continue;
    double seconds = 0;
    for (const SegmentInfo& s : metadata->segments) {
      seconds += s.frame_count / metadata->fps();
    }
    std::printf("%-20s %8u %8.1fs %3dx%-3d %7d %8.1fKB\n", name.c_str(),
                metadata->version, seconds, int{metadata->tile_rows},
                int{metadata->tile_cols}, metadata->quality_count(),
                metadata->TotalBytes() / 1024.0);
  }
  return 0;
}

int CmdDescribe(VisualCloud* db, const std::string& name) {
  auto metadata = db->Describe(name);
  if (!metadata.ok()) Fail(metadata.status(), "describe");
  std::printf("name:      %s\n", metadata->name.c_str());
  std::printf("version:   %u%s\n", metadata->version,
              metadata->streaming ? " (live)" : "");
  std::printf("frames:    %dx%d @ %.2f fps, %s\n", metadata->width,
              metadata->height, metadata->fps(),
              metadata->spherical.stereo == StereoMode::kMono
                  ? "mono"
                  : "stereo top-bottom");
  std::printf("partition: %d segments x %dx%d tiles (%d frames/segment)\n",
              metadata->segment_count(), int{metadata->tile_rows},
              int{metadata->tile_cols}, metadata->frames_per_segment);
  std::printf("ladder:   ");
  for (const QualityLevel& level : metadata->ladder) {
    std::printf(" %s(qp%d)", level.name.c_str(), level.qp);
  }
  std::printf("\nstored:    %.1f KB across %zu cells\n",
              metadata->TotalBytes() / 1024.0, metadata->cells.size());
  auto versions = db->storage()->ListVersions(name);
  std::printf("versions: ");
  for (uint32_t v : *versions) std::printf(" %u", v);
  std::printf("\n");
  return 0;
}

int CmdManifest(VisualCloud* db, const std::string& name) {
  auto metadata = db->Describe(name);
  if (!metadata.ok()) Fail(metadata.status(), "manifest");
  std::fputs(GenerateManifest(*metadata).c_str(), stdout);
  return 0;
}

int CmdStream(VisualCloud* db, const std::string& name,
              const std::string& approach_name, const std::string& predictor,
              double mbps, const std::string& archetype) {
  auto metadata = db->Describe(name);
  if (!metadata.ok()) Fail(metadata.status(), "stream");

  StreamingApproach approach;
  if (approach_name == "monolithic") {
    approach = StreamingApproach::kMonolithicFull;
  } else if (approach_name == "uniform_dash") {
    approach = StreamingApproach::kUniformDash;
  } else if (approach_name == "visualcloud") {
    approach = StreamingApproach::kVisualCloud;
  } else if (approach_name == "oracle") {
    approach = StreamingApproach::kOracle;
  } else {
    std::fprintf(stderr,
                 "vcctl: unknown approach '%s' (monolithic, uniform_dash, "
                 "visualcloud, oracle)\n",
                 approach_name.c_str());
    return 1;
  }

  double seconds = 0;
  for (const SegmentInfo& s : metadata->segments) {
    seconds += s.frame_count / metadata->fps();
  }
  auto trace_options = ArchetypeOptions(archetype, /*seed=*/1);
  if (!trace_options.ok()) Fail(trace_options.status(), "archetype");
  trace_options->duration_seconds = seconds;
  auto trace = SynthesizeTrace(*trace_options);

  SessionOptions session;
  session.approach = approach;
  session.predictor = predictor;
  session.network.bandwidth_bps = mbps * 1e6;
  session.viewport.fov_yaw = DegToRad(90);
  session.viewport.fov_pitch = DegToRad(75);
  auto stats = SimulateSession(db->storage(), *metadata, *trace, session);
  if (!stats.ok()) Fail(stats.status(), "session");

  std::printf("approach:      %s (predictor %s, %s viewer, %.1f Mbps)\n",
              stats->approach.c_str(), predictor.c_str(), archetype.c_str(),
              mbps);
  std::printf("bytes sent:    %llu (%.2f Mbps average)\n",
              static_cast<unsigned long long>(stats->bytes_sent),
              stats->MeanBitrateBps() / 1e6);
  std::printf("startup:       %.2fs, stalls: %.2fs (%d events)\n",
              stats->startup_delay, stats->stall_seconds,
              stats->stall_events);
  std::printf("in-view rung:  %.2f (0 = best of %d)\n",
              stats->mean_inview_quality, metadata->quality_count() - 1);
  return 0;
}

void PrintServeSummary(const ServerStats& stats, PrefetchMode prefetch) {
  std::printf("admission:    admitted=%d queued=%d rejected=%d max_queue=%d\n",
              stats.sessions_admitted, stats.sessions_queued,
              stats.sessions_rejected, stats.max_queue_depth);
  std::printf("throughput:   %.2f Mbps aggregate over %.2fs simulated "
              "(%.3fs host)\n",
              stats.ServedMbps(), stats.wall_seconds, stats.host_seconds);
  std::printf("prefetch:     mode=%s issued=%llu hits=%llu wasted=%llu "
              "cancelled=%llu\n",
              PrefetchModeName(prefetch),
              static_cast<unsigned long long>(stats.cache.prefetch_issued),
              static_cast<unsigned long long>(stats.cache.prefetch_hits),
              static_cast<unsigned long long>(stats.cache.prefetch_wasted),
              static_cast<unsigned long long>(stats.prefetch.cancelled));
  std::printf("churn:        deduped=%llu stale_skipped=%llu "
              "cancellation_ratio=%.3f\n",
              static_cast<unsigned long long>(stats.prefetch.deduped),
              static_cast<unsigned long long>(stats.prefetch.stale_skipped),
              stats.prefetch.CancellationRatio());
  std::printf("plan cache:   hits=%llu misses=%llu hit_rate=%.1f%%\n",
              static_cast<unsigned long long>(stats.plan.hits),
              static_cast<unsigned long long>(stats.plan.misses),
              100.0 * stats.plan.HitRate());
  std::printf("quality:      rebuffer %.2f%% (%d stalls), faults=%d "
              "retries=%d skips=%d\n",
              100.0 * stats.RebufferRatio(), stats.stall_events,
              stats.transfer_faults, stats.transfer_retries,
              stats.segments_skipped);
  if (stats.live.segments_published > 0) {
    std::printf("live ingest:  %d/%d segments published (degraded=%d), "
                "edge lag max=%.3fs mean=%.3fs final=%.3fs\n",
                stats.live.segments_published, stats.live.total_segments,
                stats.live.degraded_segments, stats.live.max_lag_seconds,
                stats.live.mean_lag_seconds, stats.live.final_lag_seconds);
  }
}

// Serves either a static video (`metadata`) or a still-growing live feed
// (`feed` non-null) over an N-node sharded cluster.
int CmdServeCluster(const VideoMetadata* metadata, LiveFeed* feed,
                    const std::vector<ViewerRequest>& viewers,
                    const ServerOptions& server_options, int nodes,
                    size_t l1_bytes, size_t l2_bytes, int io_threads,
                    PrefetchMode prefetch) {
  ShardedStoreOptions store_options;
  store_options.backend.root = StoreRoot();
  store_options.backend.io_threads = io_threads;
  store_options.shards = nodes;  // one backend shard per serving node
  store_options.l2_capacity_bytes = l2_bytes;
  auto store = ShardedStore::Open(store_options);
  if (!store.ok()) Fail(store.status(), "sharded store");
  if (prefetch != PrefetchMode::kOff && io_threads <= 0) {
    std::fprintf(stderr,
                 "vcctl: --prefetch needs an I/O pool; add --io-threads N "
                 "(continuing without speculation)\n");
  }

  ClusterOptions cluster_options;
  cluster_options.nodes = nodes;
  cluster_options.l1_capacity_bytes = l1_bytes;
  cluster_options.node = server_options;
  ClusterServer cluster(store->get(), cluster_options);
  auto run = [&] {
    if (feed != nullptr) return cluster.RunLive(feed, viewers);
    std::vector<VideoMetadata> videos = {*metadata};
    return cluster.Run(videos, viewers);
  }();
  if (!run.ok()) Fail(run.status(), "cluster run");

  std::printf("cluster:      %d nodes x %d shards (L1 %.1f MiB/node, L2 "
              "%.1f MiB shared)\n",
              nodes, store->get()->shard_count(), l1_bytes / 1048576.0,
              l2_bytes / 1048576.0);
  PrintServeSummary(run->totals, prefetch);
  std::printf("tiered cache: L1 %.1f%% hit rate, L2 %.1f%% of L1 misses "
              "(%llu hits), spillovers=%d\n",
              100.0 * run->totals.cache.HitRate(), 100.0 * run->l2.HitRate(),
              static_cast<unsigned long long>(run->l2.hits),
              run->spillovers());
  std::printf("%-6s %8s %9s %6s %10s %8s %9s\n", "node", "placed", "locality",
              "spill", "bytes", "l1_hit%", "host_s");
  for (const ClusterNodeStats& node : run->nodes) {
    std::printf("%-6d %8d %9d %6d %10llu %7.1f%% %9.3f\n", node.node_id,
                node.sessions_placed, node.locality_placements,
                node.spillovers,
                static_cast<unsigned long long>(node.bytes_sent),
                100.0 * node.l1.HitRate(), node.host_seconds);
  }
  return 0;
}

int CmdServeSim(VisualCloud* db, const std::string& name, int viewer_count,
                int slots, double budget_mbps, double faults_per_minute,
                PrefetchMode prefetch, int nodes, size_t l1_bytes,
                size_t l2_bytes, int io_threads) {
  auto metadata = db->Describe(name);
  if (!metadata.ok()) Fail(metadata.status(), "serve-sim");
  double seconds = 0;
  for (const SegmentInfo& s : metadata->segments) {
    seconds += s.frame_count / metadata->fps();
  }

  // One viewer per archetype round-robin, arrivals staggered 250 ms apart.
  const std::vector<std::string>& archetypes = ViewerArchetypes();
  std::vector<ViewerRequest> viewers;
  for (int i = 0; i < viewer_count; ++i) {
    auto trace_options =
        ArchetypeOptions(archetypes[i % archetypes.size()], /*seed=*/1 + i);
    if (!trace_options.ok()) Fail(trace_options.status(), "archetype");
    trace_options->duration_seconds = seconds;
    auto trace = SynthesizeTrace(*trace_options);
    if (!trace.ok()) Fail(trace.status(), "trace");
    ViewerRequest viewer;
    viewer.trace = std::move(*trace);
    viewer.session.network.bandwidth_bps = 50e6;
    viewer.session.network.seed = 1000 + i;
    viewer.session.viewport.fov_yaw = DegToRad(90);
    viewer.session.viewport.fov_pitch = DegToRad(75);
    if (faults_per_minute > 0) {
      viewer.session.network.faults.episodes_per_minute = faults_per_minute;
      viewer.session.network.faults.episode_seconds = 2.0;
      viewer.session.network.faults.timeout_seconds = 1.0;
      viewer.session.network.faults.seed = 500 + i;
    }
    viewer.arrival_seconds = 0.25 * i;
    viewers.push_back(std::move(viewer));
  }

  ServerOptions server_options;
  server_options.max_concurrent_sessions = slots;
  server_options.bandwidth_budget_bps = budget_mbps * 1e6;
  server_options.prefetch = prefetch;

  if (nodes > 1) {
    std::printf("served '%s' to %d viewers (%d slots/node, %.0f Mbps "
                "budget/node)\n",
                name.c_str(), viewer_count, slots, budget_mbps);
    return CmdServeCluster(&*metadata, nullptr, viewers, server_options,
                           nodes, l1_bytes, l2_bytes, io_threads, prefetch);
  }

  if (prefetch != PrefetchMode::kOff &&
      db->storage()->io_pool() == nullptr) {
    std::fprintf(stderr,
                 "vcctl: --prefetch needs an I/O pool; add --io-threads N "
                 "(continuing without speculation)\n");
  }
  StreamingServer server(db->storage(), server_options);
  auto stats = server.Run(*metadata, viewers);
  if (!stats.ok()) Fail(stats.status(), "server run");

  std::printf("served '%s' to %d viewers (%d slots, %.0f Mbps budget)\n",
              name.c_str(), viewer_count, slots, budget_mbps);
  PrintServeSummary(*stats, prefetch);
  std::printf("shared cache: %.1f%% hit rate (%llu hits, %llu misses)\n",
              100.0 * stats->cache.HitRate(),
              static_cast<unsigned long long>(stats->cache.hits),
              static_cast<unsigned long long>(stats->cache.misses));
  return 0;
}

// Live broadcast simulation: synthesize a scene, ingest it segment-by-
// segment through a LiveFeed while viewers join mid-stream at the live
// edge. The finished feed stays in the catalog as an ordinary archived
// video (same bytes the offline ingest would have produced).
int CmdLiveSim(VisualCloud* db, const std::string& scene_name,
               const std::string& video_name, int viewer_count, int seconds,
               double encode_ms, double lag_budget_ms, PrefetchMode prefetch,
               int nodes, size_t l1_bytes, size_t l2_bytes, int io_threads) {
  SceneOptions scene_options;
  scene_options.width = 256;
  scene_options.height = 128;
  auto scene = MakeScene(scene_name, scene_options);
  if (!scene.ok()) Fail(scene.status(), "scene");

  IngestOptions ingest;
  ingest.tile_rows = 4;
  ingest.tile_cols = 8;
  ingest.frames_per_segment = 15;
  ingest.fps = 15.0;

  LiveFeedOptions feed_options;
  feed_options.encode_seconds = encode_ms / 1000.0;
  if (lag_budget_ms > 0) {
    feed_options.max_lag_seconds = lag_budget_ms / 1000.0;
    feed_options.degraded_encode_seconds = feed_options.encode_seconds / 4.0;
  }
  int frame_count = seconds * 15;
  auto feed = LiveFeed::Create(db, video_name, **scene, frame_count, ingest,
                               feed_options);
  if (!feed.ok()) Fail(feed.status(), "live feed");
  double duration = frame_count / ingest.fps;

  // Viewers join throughout the first half of the broadcast (archetype
  // round-robin) and stream from the live edge to the end.
  const std::vector<std::string>& archetypes = ViewerArchetypes();
  std::vector<ViewerRequest> viewers;
  for (int i = 0; i < viewer_count; ++i) {
    auto trace_options =
        ArchetypeOptions(archetypes[i % archetypes.size()], /*seed=*/1 + i);
    if (!trace_options.ok()) Fail(trace_options.status(), "archetype");
    trace_options->duration_seconds = duration;
    auto trace = SynthesizeTrace(*trace_options);
    if (!trace.ok()) Fail(trace.status(), "trace");
    ViewerRequest viewer;
    viewer.trace = std::move(*trace);
    viewer.session.network.bandwidth_bps = 50e6;
    viewer.session.network.seed = 1000 + i;
    viewer.session.viewport.fov_yaw = DegToRad(90);
    viewer.session.viewport.fov_pitch = DegToRad(75);
    viewer.arrival_seconds =
        viewer_count > 1 ? duration * 0.5 * i / (viewer_count - 1) : 0.0;
    viewers.push_back(std::move(viewer));
  }

  std::printf("live '%s': %ds broadcast, %d segments, encode %.0f ms%s, "
              "%d viewers joining over %.1fs\n",
              video_name.c_str(), seconds,
              (*feed)->final_segment_count(), encode_ms,
              lag_budget_ms > 0 ? " (degrading)" : "", viewer_count,
              duration * 0.5);

  ServerOptions server_options;
  server_options.prefetch = prefetch;
  if (nodes > 1) {
    return CmdServeCluster(nullptr, feed->get(), viewers, server_options,
                           nodes, l1_bytes, l2_bytes, io_threads, prefetch);
  }

  if (prefetch != PrefetchMode::kOff &&
      db->storage()->io_pool() == nullptr) {
    std::fprintf(stderr,
                 "vcctl: --prefetch needs an I/O pool; add --io-threads N "
                 "(continuing without speculation)\n");
  }
  StreamingServer server(db->storage(), server_options);
  auto stats = server.RunLive(feed->get(), viewers);
  if (!stats.ok()) Fail(stats.status(), "live run");
  PrintServeSummary(*stats, prefetch);
  std::printf("archived:     '%s' v%u now a regular catalog video\n",
              video_name.c_str(), (*feed)->final_version());
  return 0;
}

int CmdMetrics(VisualCloud* db, const std::vector<std::string>& args) {
  std::string format = "json";
  std::string name;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "json" || args[i] == "csv") {
      format = args[i];
    } else {
      name = args[i];
    }
  }

  // With a video name, run one quiet streaming session first so the
  // snapshot carries live counters from every instrumented subsystem.
  if (!name.empty()) {
    auto metadata = db->Describe(name);
    if (!metadata.ok()) Fail(metadata.status(), "metrics");
    double seconds = 0;
    for (const SegmentInfo& s : metadata->segments) {
      seconds += s.frame_count / metadata->fps();
    }
    auto trace_options = ArchetypeOptions("explorer", /*seed=*/1);
    if (!trace_options.ok()) Fail(trace_options.status(), "archetype");
    trace_options->duration_seconds = seconds;
    auto trace = SynthesizeTrace(*trace_options);
    SessionOptions session;
    session.viewport.fov_yaw = DegToRad(90);
    session.viewport.fov_pitch = DegToRad(75);
    auto stats = SimulateSession(db->storage(), *metadata, *trace, session);
    if (!stats.ok()) Fail(stats.status(), "session");

    // One viewport query as well, so the query.* counters are non-zero.
    Query query = Query::Scan(name)
                      .TimeSlice(0.0, metadata->segment_duration_seconds())
                      .Viewport(kPi, kPi / 2, DegToRad(100), DegToRad(80))
                      .QualityFloor(0);
    auto executed = ExecuteQuery(query, db->storage());
    if (!executed.ok()) Fail(executed.status(), "query");
  }

  MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  if (format == "csv") {
    std::fputs(MetricsToCsv(snapshot).c_str(), stdout);
  } else {
    std::printf("%s\n", MetricsToJson(snapshot).c_str());
  }
  return 0;
}

int CmdExport(VisualCloud* db, const std::string& name,
              const std::string& path, int quality) {
  auto metadata = db->Describe(name);
  if (!metadata.ok()) Fail(metadata.status(), "export");
  auto video = ExportMonolithic(db->storage(), *metadata, quality);
  if (!video.ok()) Fail(video.status(), "export");
  auto bytes = video->Serialize();
  if (Status s = Env::Default()->WriteFile(path, Slice(bytes)); !s.ok()) {
    Fail(s, "write");
  }
  std::printf("exported '%s' q%d to %s (%.1f KB, %zu frames, no transcode)\n",
              name.c_str(), quality, path.c_str(), bytes.size() / 1024.0,
              video->frames.size());
  return 0;
}

int CmdQuery(VisualCloud* db, const std::string& expr, bool explain_only) {
  auto parsed = ParseQuery(Slice(expr));
  if (!parsed.ok()) Fail(parsed.status(), "query");

  // Offer every fresh materialized view; subsumed queries serve stored
  // view cells byte-identically instead of re-deriving.
  ViewCatalog views(db->storage()->env(), db->storage()->root());
  auto candidates = views.Candidates(*db->storage());
  if (!candidates.ok()) Fail(candidates.status(), "view catalog");
  OptimizeOptions optimize_options;
  optimize_options.views = &*candidates;

  auto plan = Optimize(*parsed, db->storage(), optimize_options);
  if (!plan.ok()) Fail(plan.status(), "optimize");
  std::fputs(plan->Explain().c_str(), stdout);
  if (explain_only) return 0;

  auto result = ExecutePlan(*plan, db->storage());
  if (!result.ok()) Fail(result.status(), "execute");

  std::printf("executed: %d cells scanned, %d pruned", result->cells_scanned,
              result->cells_pruned);
  if (result->transcodes_avoided > 0) {
    std::printf(", %d transcodes avoided", result->transcodes_avoided);
  }
  if (result->transcodes > 0) {
    std::printf(", %d transcodes", result->transcodes);
  }
  std::printf("\n");
  if (!result->frames.empty()) {
    std::printf("result: %zu decoded frames (%dx%d)\n",
                result->frames.size(), result->frames[0].width(),
                result->frames[0].height());
  }
  if (result->has_encoded) {
    std::printf("result: encoded stream, %zu frames, %.1f KB%s\n",
                result->encoded.frames.size(),
                result->encoded.size_bytes() / 1024.0,
                plan->sink == SinkKind::kToFile
                    ? (" -> " + plan->target).c_str()
                    : "");
  }
  if (plan->sink == SinkKind::kStore) {
    std::printf("stored: '%s' v%u\n", plan->target.c_str(),
                result->stored_version);
  }
  if (!plan->view_served.empty()) {
    std::printf("served from view '%s'\n", plan->view_served.c_str());
  }
  return 0;
}

int CmdQueryStanding(VisualCloud* db, const std::string& expr) {
  ViewMaintainer maintainer(db);
  auto name = maintainer.Register(Slice(expr));
  if (!name.ok()) Fail(name.status(), "standing query");
  // Catch-up replay: one emission per committed defining-plan slice.
  if (Status s = maintainer.Maintain(*name); !s.ok()) Fail(s, "maintain");
  auto results = maintainer.Results(*name);
  if (!results.ok()) Fail(results.status(), "results");
  std::printf("standing '%s': %zu segment results\n", name->c_str(),
              results->size());
  std::printf("%5s %8s %6s %10s %10s %6s\n", "idx", "src_seg", "src_v",
              "bytes", "crc32", "cells");
  for (const StandingQueryResult& r : *results) {
    std::printf("%5d %8d %6u %10llu %10u %6d\n", r.index, r.source_segment,
                r.source_version, static_cast<unsigned long long>(r.bytes),
                r.checksum, r.cells_scanned);
  }
  return 0;
}

int CmdViewCreate(VisualCloud* db, const std::string& name,
                  const std::string& expr) {
  ViewMaintainer maintainer(db);
  if (Status s = maintainer.CreateView(name, Slice(expr)); !s.ok()) {
    Fail(s, "view create");
  }
  if (Status s = maintainer.Maintain(name); !s.ok()) Fail(s, "view create");
  auto def = maintainer.catalog()->Load(name);
  if (!def.ok()) Fail(def.status(), "view create");
  std::printf("view '%s' over '%s' v%u: %d segments materialized\n",
              name.c_str(), def->source.c_str(), def->source_version,
              def->segments);
  std::printf("defining query: %s\n", def->query.c_str());
  return 0;
}

int CmdViewList(VisualCloud* db) {
  ViewCatalog catalog(db->storage()->env(), db->storage()->root());
  auto names = catalog.List();
  if (!names.ok()) Fail(names.status(), "view list");
  if (names->empty()) {
    std::printf("(no views — try: vcctl view create best "
                "'scan(demo) | quality(high) | encode | store(best)')\n");
    return 0;
  }
  std::printf("%-20s %-20s %8s %9s %-6s\n", "view", "source", "src_ver",
              "segments", "state");
  for (const std::string& name : *names) {
    auto def = catalog.Load(name);
    if (!def.ok()) {
      std::printf("%-20s (unreadable: %s)\n", name.c_str(),
                  def.status().ToString().c_str());
      continue;
    }
    const char* state = "stale";
    if (def->source_version == 0) {
      state = "empty";
    } else {
      auto source = db->storage()->GetVideo(def->source);
      if (source.ok() && source->version == def->source_version) {
        state = "fresh";
      }
    }
    std::printf("%-20s %-20s %8u %9d %-6s\n", def->name.c_str(),
                def->source.c_str(), def->source_version, def->segments,
                state);
  }
  return 0;
}

int CmdViewRefresh(VisualCloud* db, const std::string& name) {
  ViewMaintainer maintainer(db);
  if (Status s = maintainer.RefreshView(name); !s.ok()) {
    Fail(s, "view refresh");
  }
  auto def = maintainer.catalog()->Load(name);
  if (!def.ok()) Fail(def.status(), "view refresh");
  std::printf("refreshed view '%s': %d segments over '%s' v%u\n",
              name.c_str(), def->segments, def->source.c_str(),
              def->source_version);
  return 0;
}

int CmdDemo(VisualCloud* db) {
  std::printf("== vcctl demo: ingest + compare approaches ==\n");
  CmdIngest(db, "venice", "demo", "4x8", 10);
  for (const char* approach :
       {"monolithic", "uniform_dash", "visualcloud", "oracle"}) {
    std::printf("\n-- %s --\n", approach);
    CmdStream(db, "demo", approach, "dead_reckoning", 20.0, "explorer");
  }
  std::printf("\n-- metrics (all four sessions) --\n%s\n",
              MetricsToJson(MetricRegistry::Global().Snapshot()).c_str());
  std::printf("\n(store kept at %s; try 'vcctl ls')\n", StoreRoot().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  // Global flags, stripped before command dispatch (they configure the
  // store itself, which opens before any command runs). Any other --flag is
  // an error: print usage and exit non-zero rather than silently treating
  // it as a positional argument.
  int io_threads = 0;
  int nodes = 1;
  size_t l1_bytes = 16ull << 20;
  size_t l2_bytes = 256ull << 20;
  PrefetchMode prefetch = PrefetchMode::kOff;
  bool standing = false;  // query --standing
  // --flag <integer> options share one parse-and-erase path.
  auto int_flag = [&args](size_t i, long long* out) {
    if (i + 1 >= args.size()) {
      std::fprintf(stderr, "vcctl: %s needs a value\n", args[i].c_str());
      PrintUsage(stderr);
      std::exit(2);
    }
    *out = std::atoll(args[i + 1].c_str());
    args.erase(args.begin() + i, args.begin() + i + 2);
  };
  for (size_t i = 0; i < args.size();) {
    if (args[i] == "--help" || args[i] == "-h") {
      PrintUsage(stdout);
      return 0;
    }
    long long value = 0;
    if (args[i] == "--io-threads") {
      int_flag(i, &value);
      io_threads = static_cast<int>(value);
    } else if (args[i] == "--nodes") {
      int_flag(i, &value);
      nodes = static_cast<int>(value);
    } else if (args[i] == "--l1-bytes") {
      int_flag(i, &value);
      l1_bytes = value < 0 ? 0 : static_cast<size_t>(value);
    } else if (args[i] == "--l2-bytes") {
      int_flag(i, &value);
      l2_bytes = value < 0 ? 0 : static_cast<size_t>(value);
    } else if (args[i] == "--prefetch") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "vcctl: --prefetch needs a value\n");
        PrintUsage(stderr);
        return 2;
      }
      const std::string& mode = args[i + 1];
      if (mode == "off") {
        prefetch = PrefetchMode::kOff;
      } else if (mode == "predict") {
        prefetch = PrefetchMode::kPredict;
      } else if (mode == "popularity") {
        prefetch = PrefetchMode::kPopularity;
      } else {
        std::fprintf(stderr,
                     "vcctl: unknown --prefetch mode '%s' (off, predict, "
                     "popularity)\n",
                     mode.c_str());
        PrintUsage(stderr);
        return 2;
      }
      args.erase(args.begin() + i, args.begin() + i + 2);
    } else if (args[i] == "--standing") {
      standing = true;
      args.erase(args.begin() + i);
    } else if (args[i].rfind("--", 0) == 0) {
      std::fprintf(stderr, "vcctl: unknown flag '%s'\n", args[i].c_str());
      PrintUsage(stderr);
      return 2;
    } else {
      ++i;
    }
  }

  if (!args.empty() && args[0] == "help") {
    PrintUsage(stdout);
    return 0;
  }

  auto db = OpenStore(io_threads);
  if (args.empty()) return CmdDemo(db.get());

  const std::string& command = args[0];
  auto arg = [&args](size_t i, const char* fallback) {
    return args.size() > i ? args[i] : std::string(fallback);
  };
  if (command == "ingest" && args.size() >= 3) {
    return CmdIngest(db.get(), args[1], args[2], arg(3, "4x8"),
                     std::atoi(arg(4, "10").c_str()));
  }
  if (command == "ls") return CmdLs(db.get());
  if (command == "describe" && args.size() >= 2) {
    return CmdDescribe(db.get(), args[1]);
  }
  if (command == "manifest" && args.size() >= 2) {
    return CmdManifest(db.get(), args[1]);
  }
  if (command == "stream" && args.size() >= 2) {
    return CmdStream(db.get(), args[1], arg(2, "visualcloud"),
                     arg(3, "dead_reckoning"),
                     std::atof(arg(4, "20").c_str()), arg(5, "explorer"));
  }
  if (command == "serve-sim" && args.size() >= 2) {
    return CmdServeSim(db.get(), args[1], std::atoi(arg(2, "16").c_str()),
                       std::atoi(arg(3, "64").c_str()),
                       std::atof(arg(4, "0").c_str()),
                       std::atof(arg(5, "0").c_str()), prefetch, nodes,
                       l1_bytes, l2_bytes, io_threads);
  }
  if (command == "live-sim" && args.size() >= 3) {
    return CmdLiveSim(db.get(), args[1], args[2],
                      std::atoi(arg(3, "8").c_str()),
                      std::atoi(arg(4, "10").c_str()),
                      std::atof(arg(5, "200").c_str()),
                      std::atof(arg(6, "0").c_str()), prefetch, nodes,
                      l1_bytes, l2_bytes, io_threads);
  }
  if (command == "query" && args.size() >= 2) {
    if (standing) return CmdQueryStanding(db.get(), args[1]);
    return CmdQuery(db.get(), args[1], arg(2, "") == "explain");
  }
  if (command == "view" && args.size() >= 2) {
    const std::string& sub = args[1];
    if (sub == "create" && args.size() >= 4) {
      return CmdViewCreate(db.get(), args[2], args[3]);
    }
    if (sub == "list") return CmdViewList(db.get());
    if (sub == "refresh" && args.size() >= 3) {
      return CmdViewRefresh(db.get(), args[2]);
    }
    std::fprintf(stderr, "vcctl: unknown or incomplete view command '%s'\n",
                 sub.c_str());
    PrintUsage(stderr);
    return 2;
  }
  if (command == "metrics") return CmdMetrics(db.get(), args);
  if (command == "export" && args.size() >= 3) {
    return CmdExport(db.get(), args[1], args[2],
                     std::atoi(arg(3, "0").c_str()));
  }
  if (command == "drop" && args.size() >= 2) {
    if (Status s = db->Drop(args[1]); !s.ok()) Fail(s, "drop");
    std::printf("dropped '%s'\n", args[1].c_str());
    return 0;
  }
  std::fprintf(stderr, "vcctl: unknown or incomplete command '%s'\n",
               command.c_str());
  PrintUsage(stderr);
  return 2;
}
