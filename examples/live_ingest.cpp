// Live ingest: a simulated camera rig pushes frames into VisualCloud while
// a viewer streams the most recent checkpoint — the "archived and live VR
// content" half of the system. Checkpoints publish new catalog versions
// that share already-written cell files (nothing is re-encoded or copied).
//
//   ./build/examples/live_ingest

#include <cstdio>

#include "common/env.h"
#include "core/session.h"
#include "core/visualcloud.h"
#include "predict/trace_synthesizer.h"

int main() {
  using namespace vc;

  auto env = NewMemEnv();
  VisualCloudOptions options;
  options.storage.env = env.get();
  options.storage.root = "/visualcloud";
  auto db = VisualCloud::Open(options);

  SceneOptions scene_options;
  scene_options.width = 256;
  scene_options.height = 128;
  auto camera = NewTimelapseScene(scene_options);  // the "camera rig"

  IngestOptions ingest;
  ingest.tile_rows = 4;
  ingest.tile_cols = 8;
  ingest.frames_per_segment = 15;
  ingest.fps = 15.0;

  auto live = (*db)->StartLiveIngest("broadcast", 256, 128, ingest);
  if (!live.ok()) {
    std::fprintf(stderr, "live ingest failed: %s\n",
                 live.status().ToString().c_str());
    return 1;
  }

  // Capture 9 seconds, checkpointing every 3 (i.e. a 3-second publish
  // latency for live viewers).
  const int total_frames = 9 * 15;
  for (int frame = 0; frame < total_frames; ++frame) {
    if (auto s = (*live)->AppendFrame(camera->FrameAt(frame)); !s.ok()) {
      std::fprintf(stderr, "push failed: %s\n", s.ToString().c_str());
      return 1;
    }
    bool at_checkpoint = (frame + 1) % (3 * 15) == 0;
    if (at_checkpoint && frame + 1 < total_frames) {
      auto version = (*live)->Checkpoint();
      auto metadata = (*db)->Describe("broadcast");
      std::printf("checkpoint: version %u live with %d segments "
                  "(streaming=%s, data dir '%s')\n",
                  *version, metadata->segment_count(),
                  metadata->streaming ? "yes" : "no",
                  metadata->DataDir().c_str());

      // A viewer tunes in and streams everything published so far.
      auto trace_options = ArchetypeOptions("calm", 7);
      trace_options->duration_seconds = metadata->segment_count();
      auto trace = SynthesizeTrace(*trace_options);
      SessionOptions session;
      session.approach = StreamingApproach::kVisualCloud;
      session.viewport.fov_yaw = DegToRad(90);
      session.viewport.fov_pitch = DegToRad(75);
      auto stats =
          SimulateSession((*db)->storage(), *metadata, *trace, session);
      std::printf("  viewer streamed %d live segments, %lu bytes\n",
                  stats->segments,
                  static_cast<unsigned long>(stats->bytes_sent));
    }
  }

  auto final_version = (*live)->Close();
  auto metadata = (*db)->Describe("broadcast");
  std::printf("broadcast finished: version %u, %d segments, streaming=%s\n",
              *final_version, metadata->segment_count(),
              metadata->streaming ? "yes" : "no");

  // All versions remain queryable (no-overwrite storage).
  auto versions = (*db)->storage()->ListVersions("broadcast");
  std::printf("catalog now holds %zu immutable versions of 'broadcast'\n",
              versions->size());
  return 0;
}
