file(REMOVE_RECURSE
  "libvc_geometry.a"
)
