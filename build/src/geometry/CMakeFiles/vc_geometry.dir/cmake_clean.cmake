file(REMOVE_RECURSE
  "CMakeFiles/vc_geometry.dir/tile_grid.cc.o"
  "CMakeFiles/vc_geometry.dir/tile_grid.cc.o.d"
  "CMakeFiles/vc_geometry.dir/viewport.cc.o"
  "CMakeFiles/vc_geometry.dir/viewport.cc.o.d"
  "libvc_geometry.a"
  "libvc_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
