# Empty compiler generated dependencies file for vc_geometry.
# This may be replaced when dependencies are built.
