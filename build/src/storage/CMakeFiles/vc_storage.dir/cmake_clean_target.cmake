file(REMOVE_RECURSE
  "libvc_storage.a"
)
