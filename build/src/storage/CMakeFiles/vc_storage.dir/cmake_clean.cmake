file(REMOVE_RECURSE
  "CMakeFiles/vc_storage.dir/cache.cc.o"
  "CMakeFiles/vc_storage.dir/cache.cc.o.d"
  "CMakeFiles/vc_storage.dir/metadata.cc.o"
  "CMakeFiles/vc_storage.dir/metadata.cc.o.d"
  "CMakeFiles/vc_storage.dir/monolithic.cc.o"
  "CMakeFiles/vc_storage.dir/monolithic.cc.o.d"
  "CMakeFiles/vc_storage.dir/storage_manager.cc.o"
  "CMakeFiles/vc_storage.dir/storage_manager.cc.o.d"
  "libvc_storage.a"
  "libvc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
