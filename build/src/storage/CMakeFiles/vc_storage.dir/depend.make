# Empty dependencies file for vc_storage.
# This may be replaced when dependencies are built.
