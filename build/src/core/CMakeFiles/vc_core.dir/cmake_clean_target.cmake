file(REMOVE_RECURSE
  "libvc_core.a"
)
