file(REMOVE_RECURSE
  "CMakeFiles/vc_core.dir/export.cc.o"
  "CMakeFiles/vc_core.dir/export.cc.o.d"
  "CMakeFiles/vc_core.dir/reconstruct.cc.o"
  "CMakeFiles/vc_core.dir/reconstruct.cc.o.d"
  "CMakeFiles/vc_core.dir/session.cc.o"
  "CMakeFiles/vc_core.dir/session.cc.o.d"
  "CMakeFiles/vc_core.dir/tile_assignment.cc.o"
  "CMakeFiles/vc_core.dir/tile_assignment.cc.o.d"
  "CMakeFiles/vc_core.dir/visualcloud.cc.o"
  "CMakeFiles/vc_core.dir/visualcloud.cc.o.d"
  "libvc_core.a"
  "libvc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
