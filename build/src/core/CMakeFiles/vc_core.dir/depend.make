# Empty dependencies file for vc_core.
# This may be replaced when dependencies are built.
