# Empty dependencies file for vc_image.
# This may be replaced when dependencies are built.
