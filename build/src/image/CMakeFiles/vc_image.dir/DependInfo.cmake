
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/frame.cc" "src/image/CMakeFiles/vc_image.dir/frame.cc.o" "gcc" "src/image/CMakeFiles/vc_image.dir/frame.cc.o.d"
  "/root/repo/src/image/metrics.cc" "src/image/CMakeFiles/vc_image.dir/metrics.cc.o" "gcc" "src/image/CMakeFiles/vc_image.dir/metrics.cc.o.d"
  "/root/repo/src/image/scene.cc" "src/image/CMakeFiles/vc_image.dir/scene.cc.o" "gcc" "src/image/CMakeFiles/vc_image.dir/scene.cc.o.d"
  "/root/repo/src/image/stereo.cc" "src/image/CMakeFiles/vc_image.dir/stereo.cc.o" "gcc" "src/image/CMakeFiles/vc_image.dir/stereo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
