file(REMOVE_RECURSE
  "libvc_image.a"
)
