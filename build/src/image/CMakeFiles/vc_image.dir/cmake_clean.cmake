file(REMOVE_RECURSE
  "CMakeFiles/vc_image.dir/frame.cc.o"
  "CMakeFiles/vc_image.dir/frame.cc.o.d"
  "CMakeFiles/vc_image.dir/metrics.cc.o"
  "CMakeFiles/vc_image.dir/metrics.cc.o.d"
  "CMakeFiles/vc_image.dir/scene.cc.o"
  "CMakeFiles/vc_image.dir/scene.cc.o.d"
  "CMakeFiles/vc_image.dir/stereo.cc.o"
  "CMakeFiles/vc_image.dir/stereo.cc.o.d"
  "libvc_image.a"
  "libvc_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
