# Empty dependencies file for vc_container.
# This may be replaced when dependencies are built.
