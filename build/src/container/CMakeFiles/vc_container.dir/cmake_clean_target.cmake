file(REMOVE_RECURSE
  "libvc_container.a"
)
