file(REMOVE_RECURSE
  "CMakeFiles/vc_container.dir/box.cc.o"
  "CMakeFiles/vc_container.dir/box.cc.o.d"
  "CMakeFiles/vc_container.dir/boxes.cc.o"
  "CMakeFiles/vc_container.dir/boxes.cc.o.d"
  "libvc_container.a"
  "libvc_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
