# Empty dependencies file for vc_streaming.
# This may be replaced when dependencies are built.
