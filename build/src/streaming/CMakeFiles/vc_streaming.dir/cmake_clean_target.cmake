file(REMOVE_RECURSE
  "libvc_streaming.a"
)
