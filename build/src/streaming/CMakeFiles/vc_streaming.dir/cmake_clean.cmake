file(REMOVE_RECURSE
  "CMakeFiles/vc_streaming.dir/adaptation.cc.o"
  "CMakeFiles/vc_streaming.dir/adaptation.cc.o.d"
  "CMakeFiles/vc_streaming.dir/manifest.cc.o"
  "CMakeFiles/vc_streaming.dir/manifest.cc.o.d"
  "CMakeFiles/vc_streaming.dir/network.cc.o"
  "CMakeFiles/vc_streaming.dir/network.cc.o.d"
  "libvc_streaming.a"
  "libvc_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
