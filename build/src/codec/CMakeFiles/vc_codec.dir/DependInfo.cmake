
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitstream.cc" "src/codec/CMakeFiles/vc_codec.dir/bitstream.cc.o" "gcc" "src/codec/CMakeFiles/vc_codec.dir/bitstream.cc.o.d"
  "/root/repo/src/codec/decoder.cc" "src/codec/CMakeFiles/vc_codec.dir/decoder.cc.o" "gcc" "src/codec/CMakeFiles/vc_codec.dir/decoder.cc.o.d"
  "/root/repo/src/codec/encoder.cc" "src/codec/CMakeFiles/vc_codec.dir/encoder.cc.o" "gcc" "src/codec/CMakeFiles/vc_codec.dir/encoder.cc.o.d"
  "/root/repo/src/codec/entropy.cc" "src/codec/CMakeFiles/vc_codec.dir/entropy.cc.o" "gcc" "src/codec/CMakeFiles/vc_codec.dir/entropy.cc.o.d"
  "/root/repo/src/codec/homomorphic.cc" "src/codec/CMakeFiles/vc_codec.dir/homomorphic.cc.o" "gcc" "src/codec/CMakeFiles/vc_codec.dir/homomorphic.cc.o.d"
  "/root/repo/src/codec/mb_common.cc" "src/codec/CMakeFiles/vc_codec.dir/mb_common.cc.o" "gcc" "src/codec/CMakeFiles/vc_codec.dir/mb_common.cc.o.d"
  "/root/repo/src/codec/motion.cc" "src/codec/CMakeFiles/vc_codec.dir/motion.cc.o" "gcc" "src/codec/CMakeFiles/vc_codec.dir/motion.cc.o.d"
  "/root/repo/src/codec/quality.cc" "src/codec/CMakeFiles/vc_codec.dir/quality.cc.o" "gcc" "src/codec/CMakeFiles/vc_codec.dir/quality.cc.o.d"
  "/root/repo/src/codec/transform.cc" "src/codec/CMakeFiles/vc_codec.dir/transform.cc.o" "gcc" "src/codec/CMakeFiles/vc_codec.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/vc_image.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vc_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
