# Empty compiler generated dependencies file for vc_codec.
# This may be replaced when dependencies are built.
