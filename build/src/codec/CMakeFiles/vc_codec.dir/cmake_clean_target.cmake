file(REMOVE_RECURSE
  "libvc_codec.a"
)
