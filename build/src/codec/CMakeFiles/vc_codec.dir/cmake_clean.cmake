file(REMOVE_RECURSE
  "CMakeFiles/vc_codec.dir/bitstream.cc.o"
  "CMakeFiles/vc_codec.dir/bitstream.cc.o.d"
  "CMakeFiles/vc_codec.dir/decoder.cc.o"
  "CMakeFiles/vc_codec.dir/decoder.cc.o.d"
  "CMakeFiles/vc_codec.dir/encoder.cc.o"
  "CMakeFiles/vc_codec.dir/encoder.cc.o.d"
  "CMakeFiles/vc_codec.dir/entropy.cc.o"
  "CMakeFiles/vc_codec.dir/entropy.cc.o.d"
  "CMakeFiles/vc_codec.dir/homomorphic.cc.o"
  "CMakeFiles/vc_codec.dir/homomorphic.cc.o.d"
  "CMakeFiles/vc_codec.dir/mb_common.cc.o"
  "CMakeFiles/vc_codec.dir/mb_common.cc.o.d"
  "CMakeFiles/vc_codec.dir/motion.cc.o"
  "CMakeFiles/vc_codec.dir/motion.cc.o.d"
  "CMakeFiles/vc_codec.dir/quality.cc.o"
  "CMakeFiles/vc_codec.dir/quality.cc.o.d"
  "CMakeFiles/vc_codec.dir/transform.cc.o"
  "CMakeFiles/vc_codec.dir/transform.cc.o.d"
  "libvc_codec.a"
  "libvc_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
