# Empty dependencies file for vc_common.
# This may be replaced when dependencies are built.
