file(REMOVE_RECURSE
  "CMakeFiles/vc_common.dir/bitio.cc.o"
  "CMakeFiles/vc_common.dir/bitio.cc.o.d"
  "CMakeFiles/vc_common.dir/crc32.cc.o"
  "CMakeFiles/vc_common.dir/crc32.cc.o.d"
  "CMakeFiles/vc_common.dir/env.cc.o"
  "CMakeFiles/vc_common.dir/env.cc.o.d"
  "CMakeFiles/vc_common.dir/logging.cc.o"
  "CMakeFiles/vc_common.dir/logging.cc.o.d"
  "CMakeFiles/vc_common.dir/status.cc.o"
  "CMakeFiles/vc_common.dir/status.cc.o.d"
  "CMakeFiles/vc_common.dir/thread_pool.cc.o"
  "CMakeFiles/vc_common.dir/thread_pool.cc.o.d"
  "libvc_common.a"
  "libvc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
