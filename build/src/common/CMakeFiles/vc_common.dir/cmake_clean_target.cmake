file(REMOVE_RECURSE
  "libvc_common.a"
)
