file(REMOVE_RECURSE
  "CMakeFiles/vc_predict.dir/accuracy.cc.o"
  "CMakeFiles/vc_predict.dir/accuracy.cc.o.d"
  "CMakeFiles/vc_predict.dir/head_trace.cc.o"
  "CMakeFiles/vc_predict.dir/head_trace.cc.o.d"
  "CMakeFiles/vc_predict.dir/popularity.cc.o"
  "CMakeFiles/vc_predict.dir/popularity.cc.o.d"
  "CMakeFiles/vc_predict.dir/predictor.cc.o"
  "CMakeFiles/vc_predict.dir/predictor.cc.o.d"
  "CMakeFiles/vc_predict.dir/trace_synthesizer.cc.o"
  "CMakeFiles/vc_predict.dir/trace_synthesizer.cc.o.d"
  "libvc_predict.a"
  "libvc_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
