file(REMOVE_RECURSE
  "libvc_predict.a"
)
