# Empty compiler generated dependencies file for vc_predict.
# This may be replaced when dependencies are built.
