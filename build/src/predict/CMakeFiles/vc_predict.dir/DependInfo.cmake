
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/accuracy.cc" "src/predict/CMakeFiles/vc_predict.dir/accuracy.cc.o" "gcc" "src/predict/CMakeFiles/vc_predict.dir/accuracy.cc.o.d"
  "/root/repo/src/predict/head_trace.cc" "src/predict/CMakeFiles/vc_predict.dir/head_trace.cc.o" "gcc" "src/predict/CMakeFiles/vc_predict.dir/head_trace.cc.o.d"
  "/root/repo/src/predict/popularity.cc" "src/predict/CMakeFiles/vc_predict.dir/popularity.cc.o" "gcc" "src/predict/CMakeFiles/vc_predict.dir/popularity.cc.o.d"
  "/root/repo/src/predict/predictor.cc" "src/predict/CMakeFiles/vc_predict.dir/predictor.cc.o" "gcc" "src/predict/CMakeFiles/vc_predict.dir/predictor.cc.o.d"
  "/root/repo/src/predict/trace_synthesizer.cc" "src/predict/CMakeFiles/vc_predict.dir/trace_synthesizer.cc.o" "gcc" "src/predict/CMakeFiles/vc_predict.dir/trace_synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vc_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/vc_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
