file(REMOVE_RECURSE
  "CMakeFiles/image_test.dir/image_test.cc.o"
  "CMakeFiles/image_test.dir/image_test.cc.o.d"
  "image_test"
  "image_test.pdb"
  "image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
