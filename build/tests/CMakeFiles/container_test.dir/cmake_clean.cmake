file(REMOVE_RECURSE
  "CMakeFiles/container_test.dir/container_test.cc.o"
  "CMakeFiles/container_test.dir/container_test.cc.o.d"
  "container_test"
  "container_test.pdb"
  "container_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
