# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/container_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/predict_test[1]_include.cmake")
include("/root/repo/build/tests/streaming_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
