file(REMOVE_RECURSE
  "CMakeFiles/bench_tiling.dir/bench_tiling.cpp.o"
  "CMakeFiles/bench_tiling.dir/bench_tiling.cpp.o.d"
  "bench_tiling"
  "bench_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
