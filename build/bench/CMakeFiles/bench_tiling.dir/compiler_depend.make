# Empty compiler generated dependencies file for bench_tiling.
# This may be replaced when dependencies are built.
