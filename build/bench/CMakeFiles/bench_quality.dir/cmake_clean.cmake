file(REMOVE_RECURSE
  "CMakeFiles/bench_quality.dir/bench_quality.cpp.o"
  "CMakeFiles/bench_quality.dir/bench_quality.cpp.o.d"
  "bench_quality"
  "bench_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
