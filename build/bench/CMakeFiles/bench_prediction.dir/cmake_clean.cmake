file(REMOVE_RECURSE
  "CMakeFiles/bench_prediction.dir/bench_prediction.cpp.o"
  "CMakeFiles/bench_prediction.dir/bench_prediction.cpp.o.d"
  "bench_prediction"
  "bench_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
