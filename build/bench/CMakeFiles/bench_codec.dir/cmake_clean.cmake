file(REMOVE_RECURSE
  "CMakeFiles/bench_codec.dir/bench_codec.cpp.o"
  "CMakeFiles/bench_codec.dir/bench_codec.cpp.o.d"
  "bench_codec"
  "bench_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
