# Empty compiler generated dependencies file for bench_codec.
# This may be replaced when dependencies are built.
