file(REMOVE_RECURSE
  "CMakeFiles/bench_bandwidth.dir/bench_bandwidth.cpp.o"
  "CMakeFiles/bench_bandwidth.dir/bench_bandwidth.cpp.o.d"
  "bench_bandwidth"
  "bench_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
