# Empty dependencies file for bench_bandwidth.
# This may be replaced when dependencies are built.
