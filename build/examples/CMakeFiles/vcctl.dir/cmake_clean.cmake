file(REMOVE_RECURSE
  "CMakeFiles/vcctl.dir/vcctl.cpp.o"
  "CMakeFiles/vcctl.dir/vcctl.cpp.o.d"
  "vcctl"
  "vcctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
