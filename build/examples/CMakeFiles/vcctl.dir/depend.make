# Empty dependencies file for vcctl.
# This may be replaced when dependencies are built.
