# Empty dependencies file for predictive_streaming.
# This may be replaced when dependencies are built.
