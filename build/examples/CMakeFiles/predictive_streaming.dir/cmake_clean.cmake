file(REMOVE_RECURSE
  "CMakeFiles/predictive_streaming.dir/predictive_streaming.cpp.o"
  "CMakeFiles/predictive_streaming.dir/predictive_streaming.cpp.o.d"
  "predictive_streaming"
  "predictive_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictive_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
