file(REMOVE_RECURSE
  "CMakeFiles/live_ingest.dir/live_ingest.cpp.o"
  "CMakeFiles/live_ingest.dir/live_ingest.cpp.o.d"
  "live_ingest"
  "live_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
