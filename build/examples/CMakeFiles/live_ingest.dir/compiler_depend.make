# Empty compiler generated dependencies file for live_ingest.
# This may be replaced when dependencies are built.
