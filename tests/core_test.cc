#include <gtest/gtest.h>

#include "common/env.h"
#include "codec/decoder.h"
#include "core/export.h"
#include "core/session.h"
#include "core/tile_assignment.h"
#include "core/visualcloud.h"
#include "image/metrics.h"
#include "image/stereo.h"
#include "obs/metrics.h"
#include "predict/trace_synthesizer.h"

namespace vc {
namespace {

/// Shared fixture: one in-memory VisualCloud instance with a small venice
/// clip ingested once (encoding dominates test time).
class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = NewMemEnv().release();
    VisualCloudOptions options;
    options.storage.env = env_;
    options.storage.root = "/vcdb";
    auto db = VisualCloud::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = db->release();

    SceneOptions scene_options;
    scene_options.width = 128;
    scene_options.height = 64;
    scene_ = NewVeniceScene(scene_options).release();

    IngestOptions ingest;
    ingest.tile_rows = 4;
    ingest.tile_cols = 4;
    ingest.frames_per_segment = 8;
    ingest.fps = 8.0;  // 1-second segments with 8 frames
    ingest.ladder = {{"high", 14}, {"medium", 28}, {"low", 42}};
    auto version = db_->IngestScene("venice", *scene_, 32, ingest);
    ASSERT_TRUE(version.ok()) << version.status().ToString();
    ASSERT_EQ(*version, 1u);
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete scene_;
    scene_ = nullptr;
    delete env_;
    env_ = nullptr;
  }

  static HeadTrace MakeTrace(double yaw_rate = 0.3) {
    std::vector<TraceSample> samples;
    for (int i = 0; i <= 32 * 4; ++i) {
      double t = i / 32.0 * 4.0;  // covers the 4-second clip
      samples.push_back({t, {WrapYaw(1.0 + yaw_rate * t), kPi / 2}});
    }
    return *HeadTrace::FromSamples(std::move(samples));
  }

  static SessionOptions BaseSession(StreamingApproach approach) {
    SessionOptions options;
    options.approach = approach;
    options.network.bandwidth_bps = 50e6;  // unconstrained by default
    options.network.latency_seconds = 0.01;
    options.viewport.width = 48;
    options.viewport.height = 48;
    options.viewport.fov_yaw = DegToRad(90.0);
    options.viewport.fov_pitch = DegToRad(75.0);
    return options;
  }

  static Env* env_;
  static VisualCloud* db_;
  static SceneGenerator* scene_;
};

Env* CoreTest::env_ = nullptr;
VisualCloud* CoreTest::db_ = nullptr;
SceneGenerator* CoreTest::scene_ = nullptr;

// ------------------------------------------------------------------ Ingest

TEST_F(CoreTest, IngestProducesExpectedLayout) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  EXPECT_EQ(metadata->width, 128);
  EXPECT_EQ(metadata->height, 64);
  EXPECT_EQ(metadata->segment_count(), 4);
  EXPECT_EQ(metadata->tile_count(), 16);
  EXPECT_EQ(metadata->quality_count(), 3);
  EXPECT_EQ(metadata->cells.size(), 4u * 16 * 3);
  EXPECT_NEAR(metadata->segment_duration_seconds(), 1.0, 1e-9);
  for (const CellInfo& cell : metadata->cells) {
    EXPECT_GT(cell.byte_size, 0u);
  }
}

TEST_F(CoreTest, QualityLadderShrinksBytes) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  for (int segment = 0; segment < metadata->segment_count(); ++segment) {
    uint64_t high = metadata->SegmentBytesAtQuality(segment, 0);
    uint64_t medium = metadata->SegmentBytesAtQuality(segment, 1);
    uint64_t low = metadata->SegmentBytesAtQuality(segment, 2);
    EXPECT_GT(high, medium);
    EXPECT_GT(medium, low);
  }
}

TEST_F(CoreTest, ListAndDescribe) {
  auto videos = db_->List();
  ASSERT_TRUE(videos.ok());
  EXPECT_NE(std::find(videos->begin(), videos->end(), "venice"),
            videos->end());
  EXPECT_TRUE(db_->Describe("nothere").status().IsNotFound());
}

TEST_F(CoreTest, ReadFramesMatchesSource) {
  auto frames = db_->ReadFrames("venice", 4, 9, /*quality=*/0);
  ASSERT_TRUE(frames.ok()) << frames.status().ToString();
  ASSERT_EQ(frames->size(), 6u);
  for (int i = 0; i < 6; ++i) {
    Frame original = scene_->FrameAt(4 + i);
    auto psnr = LumaPsnr(original, (*frames)[i]);
    ASSERT_TRUE(psnr.ok());
    EXPECT_GT(*psnr, 32.0) << "frame " << 4 + i;
  }
}

TEST_F(CoreTest, ReadFramesLowQualityIsWorse) {
  auto high = db_->ReadFrames("venice", 0, 3, 0);
  auto low = db_->ReadFrames("venice", 0, 3, 2);
  ASSERT_TRUE(high.ok());
  ASSERT_TRUE(low.ok());
  double high_psnr = 0, low_psnr = 0;
  for (int i = 0; i < 4; ++i) {
    Frame original = scene_->FrameAt(i);
    high_psnr += *LumaPsnr(original, (*high)[i]);
    low_psnr += *LumaPsnr(original, (*low)[i]);
  }
  EXPECT_GT(high_psnr, low_psnr);
}

TEST_F(CoreTest, ReadFramesValidatesRange) {
  EXPECT_FALSE(db_->ReadFrames("venice", -1, 3).ok());
  EXPECT_FALSE(db_->ReadFrames("venice", 3, 1).ok());
  EXPECT_TRUE(db_->ReadFrames("venice", 0, 999).status().IsOutOfRange());
}

TEST_F(CoreTest, IngestValidation) {
  IngestOptions bad;
  bad.ladder.clear();
  std::vector<Frame> frames = {Frame(128, 64)};
  EXPECT_TRUE(db_->Ingest("x", frames, bad).status().IsInvalidArgument());
  IngestOptions ok_options;
  EXPECT_TRUE(db_->Ingest("x", {}, ok_options).status().IsInvalidArgument());
  std::vector<Frame> mixed = {Frame(128, 64), Frame(64, 64)};
  EXPECT_TRUE(
      db_->Ingest("x", mixed, ok_options).status().IsInvalidArgument());
}

TEST_F(CoreTest, AnalysisReuseMatchesUnhintedQuality) {
  // Ingesting with motion-analysis reuse on and off must land within a
  // whisker of each other at every ladder rung, and the hinted ingest must
  // actually take the hinted path (visible in the codec counters).
  auto frames = RenderScene(*scene_, 16);
  IngestOptions ingest;
  ingest.tile_rows = 2;
  ingest.tile_cols = 2;
  ingest.frames_per_segment = 8;
  ingest.fps = 8.0;
  ingest.ladder = {{"high", 14}, {"medium", 28}, {"low", 42}};

  auto rung_psnr = [&](VisualCloud* db, const std::string& name) {
    std::vector<double> psnr;
    for (int quality = 0; quality < 3; ++quality) {
      auto decoded = db->ReadFrames(name, 0, 15, quality);
      EXPECT_TRUE(decoded.ok());
      double total = 0;
      for (int i = 0; i < 16; ++i) total += *LumaPsnr(frames[i], (*decoded)[i]);
      psnr.push_back(total / 16);
    }
    return psnr;
  };

  auto env = NewMemEnv();
  VisualCloudOptions options;
  options.storage.env = env.get();
  options.storage.root = "/reusedb";
  auto db = VisualCloud::Open(options);
  ASSERT_TRUE(db.ok());

  ingest.reuse_motion_analysis = false;
  ASSERT_TRUE((*db)->Ingest("plain", frames, ingest).ok());
  auto plain = rung_psnr(db->get(), "plain");

  MetricRegistry::Global().Reset();
  ingest.reuse_motion_analysis = true;
  ASSERT_TRUE((*db)->Ingest("hinted", frames, ingest).ok());
  auto hinted = rung_psnr(db->get(), "hinted");

  for (int quality = 0; quality < 3; ++quality) {
    EXPECT_NEAR(hinted[quality], plain[quality], 0.1) << "rung " << quality;
  }

  MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  // 2 segments × 4 tiles × 3 rungs encoded; the two non-reference rungs of
  // every cell ran hinted searches.
  EXPECT_EQ(snapshot.counters["ingest.segments"], 2u);
  EXPECT_EQ(snapshot.counters["ingest.cells"], 2u * 4 * 3);
  EXPECT_GT(snapshot.counters["codec.search_hinted"], 0u);
  EXPECT_GT(snapshot.counters["codec.hints_accepted"], 0u);
  EXPECT_GT(snapshot.counters["codec.search_full"], 0u);
}

// --------------------------------------------------------- Tile assignment

TEST_F(CoreTest, AssignTileQualitiesSplitsInAndOut) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  AssignmentOptions options;
  options.margin = 0.1;
  Orientation gaze{kPi / 2, kPi / 2};
  TileQualityPlan plan = AssignTileQualities(*metadata, gaze, options);
  ASSERT_EQ(plan.size(), 16u);
  int high_tiles = 0, low_tiles = 0;
  for (int q : plan) {
    if (q == 0) ++high_tiles;
    if (q == metadata->quality_count() - 1) ++low_tiles;
  }
  EXPECT_GT(high_tiles, 0);
  EXPECT_GT(low_tiles, 0);
  // The gaze tile itself is high quality.
  TileGrid grid = metadata->tile_grid();
  EXPECT_EQ(plan[grid.IndexOf(grid.TileFor(gaze))], 0);
}

TEST_F(CoreTest, PlanBytesAndBudgetFitting) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  Orientation gaze{kPi / 2, kPi / 2};
  AssignmentOptions options;
  TileQualityPlan plan = AssignTileQualities(*metadata, gaze, options);
  uint64_t bytes = PlanBytes(*metadata, 0, plan);
  EXPECT_GT(bytes, 0u);

  // A tiny budget forces everything to the lowest rung.
  TileQualityPlan squeezed =
      FitPlanToBudget(*metadata, 0, plan, gaze, /*budget=*/1.0);
  for (int q : squeezed) {
    EXPECT_EQ(q, metadata->quality_count() - 1);
  }
  // A huge budget leaves the plan untouched.
  TileQualityPlan untouched =
      FitPlanToBudget(*metadata, 0, plan, gaze, 1e12);
  EXPECT_EQ(untouched, plan);
  // Degradation hits far-from-gaze tiles before the gaze tile.
  uint64_t mid_budget = bytes - 1;
  TileQualityPlan degraded =
      FitPlanToBudget(*metadata, 0, plan, gaze, mid_budget);
  TileGrid grid = metadata->tile_grid();
  EXPECT_EQ(degraded[grid.IndexOf(grid.TileFor(gaze))], 0);
}

// ----------------------------------------------------------------- Session

TEST_F(CoreTest, VisualCloudSendsFewerBytesThanMonolithic) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  HeadTrace trace = MakeTrace();

  auto mono = SimulateSession(db_->storage(), *metadata, trace,
                              BaseSession(StreamingApproach::kMonolithicFull));
  auto tiled = SimulateSession(db_->storage(), *metadata, trace,
                               BaseSession(StreamingApproach::kVisualCloud));
  auto oracle = SimulateSession(db_->storage(), *metadata, trace,
                                BaseSession(StreamingApproach::kOracle));
  ASSERT_TRUE(mono.ok()) << mono.status().ToString();
  ASSERT_TRUE(tiled.ok());
  ASSERT_TRUE(oracle.ok());

  EXPECT_LT(tiled->bytes_sent, mono->bytes_sent);
  EXPECT_LE(oracle->bytes_sent, tiled->bytes_sent * 11 / 10);
  double savings = BandwidthSavings(*mono, *tiled);
  EXPECT_GT(savings, 0.15) << "tiled streaming should save bandwidth";
}

TEST_F(CoreTest, OracleKeepsViewportQualityHigh) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  HeadTrace trace = MakeTrace();

  SessionOptions options = BaseSession(StreamingApproach::kOracle);
  options.evaluate_quality = true;
  auto oracle =
      SimulateSession(db_->storage(), *metadata, trace, options, scene_);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  SessionOptions mono_options = BaseSession(StreamingApproach::kMonolithicFull);
  mono_options.evaluate_quality = true;
  auto mono = SimulateSession(db_->storage(), *metadata, trace, mono_options,
                              scene_);
  ASSERT_TRUE(mono.ok());

  // The oracle's viewport quality matches full-quality delivery closely.
  EXPECT_GT(oracle->mean_viewport_psnr, mono->mean_viewport_psnr - 1.0);
  EXPECT_GT(oracle->quality_samples, 0);
}

TEST_F(CoreTest, ConstrainedBandwidthCausesAdaptation) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  HeadTrace trace = MakeTrace();

  SessionOptions rich = BaseSession(StreamingApproach::kUniformDash);
  SessionOptions poor = BaseSession(StreamingApproach::kUniformDash);
  poor.network.bandwidth_bps = 100e3;  // starved

  auto rich_stats = SimulateSession(db_->storage(), *metadata, trace, rich);
  auto poor_stats = SimulateSession(db_->storage(), *metadata, trace, poor);
  ASSERT_TRUE(rich_stats.ok());
  ASSERT_TRUE(poor_stats.ok());
  EXPECT_LT(poor_stats->bytes_sent, rich_stats->bytes_sent);
  EXPECT_GT(poor_stats->mean_inview_quality,
            rich_stats->mean_inview_quality);  // higher rung index = worse
}

TEST_F(CoreTest, SessionValidation) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  HeadTrace trace = MakeTrace();

  SessionOptions options = BaseSession(StreamingApproach::kVisualCloud);
  options.evaluate_quality = true;  // but no reference scene
  EXPECT_TRUE(SimulateSession(db_->storage(), *metadata, trace, options)
                  .status()
                  .IsInvalidArgument());

  options = BaseSession(StreamingApproach::kVisualCloud);
  options.high_quality = 99;
  EXPECT_TRUE(SimulateSession(db_->storage(), *metadata, trace, options)
                  .status()
                  .IsInvalidArgument());

  options = BaseSession(StreamingApproach::kVisualCloud);
  EXPECT_TRUE(SimulateSession(db_->storage(), *metadata, HeadTrace(), options)
                  .status()
                  .IsInvalidArgument());

  options = BaseSession(StreamingApproach::kVisualCloud);
  options.predictor = "psychic";
  EXPECT_FALSE(SimulateSession(db_->storage(), *metadata, trace, options).ok());
}

TEST_F(CoreTest, PopularityModelExpandsHighQualitySet) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  HeadTrace trace = MakeTrace();

  // Train a model where historical viewers stared at the yaw opposite this
  // session's trace: those tiles must be added to the high-quality set.
  PopularityModel model(metadata->tile_grid(),
                        metadata->segment_duration_seconds(),
                        metadata->segment_count());
  std::vector<TraceSample> opposite;
  for (int i = 0; i <= 32 * 4; ++i) {
    double t = i / 32.0 * 4.0;
    opposite.push_back({t, {WrapYaw(1.0 + 0.3 * t + kPi), kPi / 2}});
  }
  model.AddTrace(*HeadTrace::FromSamples(std::move(opposite)));

  SessionOptions plain = BaseSession(StreamingApproach::kVisualCloud);
  SessionOptions crowd = plain;
  crowd.popularity = &model;
  auto plain_stats = SimulateSession(db_->storage(), *metadata, trace, plain);
  auto crowd_stats = SimulateSession(db_->storage(), *metadata, trace, crowd);
  ASSERT_TRUE(plain_stats.ok());
  ASSERT_TRUE(crowd_stats.ok());
  EXPECT_GT(crowd_stats->bytes_sent, plain_stats->bytes_sent)
      << "popular (historically watched) tiles must be upgraded too";

  // A mismatched grid is ignored rather than misapplied.
  PopularityModel wrong_grid(TileGrid(2, 3), 1.0, metadata->segment_count());
  crowd.popularity = &wrong_grid;
  auto ignored = SimulateSession(db_->storage(), *metadata, trace, crowd);
  ASSERT_TRUE(ignored.ok());
  EXPECT_EQ(ignored->bytes_sent, plain_stats->bytes_sent);
}

TEST_F(CoreTest, SessionAccountsStalls) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  HeadTrace trace = MakeTrace();
  // Non-adaptive full quality over a starved link must stall.
  SessionOptions options = BaseSession(StreamingApproach::kMonolithicFull);
  options.network.bandwidth_bps = 50e3;
  auto stats = SimulateSession(db_->storage(), *metadata, trace, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->stall_seconds, 0.0);
  EXPECT_GT(stats->stall_events, 0);
  EXPECT_GT(stats->startup_delay, 0.0);
}

TEST_F(CoreTest, SimulateSessionPopulatesGlobalMetrics) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  HeadTrace trace = MakeTrace();

  MetricRegistry& registry = MetricRegistry::Global();
  MetricsSnapshot before = registry.Snapshot();
  auto value = [](const MetricsSnapshot& snapshot, const std::string& name) {
    auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? uint64_t{0} : it->second;
  };

  SessionOptions options = BaseSession(StreamingApproach::kVisualCloud);
  options.evaluate_quality = true;  // exercises the storage read path too
  auto stats = SimulateSession(db_->storage(), *metadata, trace, options,
                               scene_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  MetricsSnapshot after = registry.Snapshot();
  EXPECT_GT(value(after, "session.sessions"), value(before, "session.sessions"));
  EXPECT_GE(value(after, "session.segments"),
            value(before, "session.segments") + 4);
  EXPECT_GT(value(after, "net.transfers"), value(before, "net.transfers"));
  EXPECT_GT(value(after, "net.bytes_sent"), value(before, "net.bytes_sent"));
  EXPECT_GT(value(after, "storage.cell_reads"),
            value(before, "storage.cell_reads"));
  // Every segment scores the predictor as either a viewport hit or a miss.
  uint64_t predictions =
      value(after, "predict.dead_reckoning.viewport_hits") +
      value(after, "predict.dead_reckoning.viewport_misses") -
      value(before, "predict.dead_reckoning.viewport_hits") -
      value(before, "predict.dead_reckoning.viewport_misses");
  EXPECT_GE(predictions, 4u);
  // Transfer latencies landed in the histogram.
  auto histogram = after.histograms.find("net.transfer_seconds");
  ASSERT_NE(histogram, after.histograms.end());
  EXPECT_GT(histogram->second.count, 0u);
}

TEST_F(CoreTest, ApproachNames) {
  EXPECT_EQ(ApproachName(StreamingApproach::kMonolithicFull), "monolithic");
  EXPECT_EQ(ApproachName(StreamingApproach::kUniformDash), "uniform_dash");
  EXPECT_EQ(ApproachName(StreamingApproach::kVisualCloud), "visualcloud");
  EXPECT_EQ(ApproachName(StreamingApproach::kOracle), "oracle");
}

// ----------------------------------------------------------------- Export

TEST_F(CoreTest, ExportMonolithicMatchesStoredPixels) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  auto exported = ExportMonolithic(db_->storage(), *metadata, /*quality=*/0);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  EXPECT_EQ(exported->header.width, metadata->width);
  EXPECT_EQ(exported->header.tile_grid(), metadata->tile_grid());
  ASSERT_EQ(exported->frames.size(), 32u);

  // The exported stream decodes to exactly what the per-cell path decodes.
  auto decoded = DecodeVideo(*exported);
  ASSERT_TRUE(decoded.ok());
  auto reference = db_->ReadFrames("venice", 0, 31, 0);
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < decoded->size(); ++i) {
    ASSERT_EQ((*decoded)[i].y_plane(), (*reference)[i].y_plane())
        << "frame " << i;
  }
}

TEST_F(CoreTest, ExportValidatesQuality) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  EXPECT_FALSE(ExportMonolithic(db_->storage(), *metadata, 99).ok());
  EXPECT_FALSE(ExportMonolithic(db_->storage(), *metadata, -1).ok());
}

// ----------------------------------------------------------------- Stereo

TEST_F(CoreTest, StereoIngestRoundTrip) {
  SceneOptions scene_options;
  scene_options.width = 128;
  scene_options.height = 32;  // packed becomes 128x64
  auto stereo = NewStereoScene(NewVeniceScene(scene_options));
  IngestOptions ingest;
  ingest.tile_rows = 2;
  ingest.tile_cols = 2;
  ingest.frames_per_segment = 4;
  ingest.fps = 4.0;
  ingest.stereo = StereoMode::kStereoTopBottom;
  ingest.ladder = {{"only", 20}};
  auto version = db_->IngestScene("stereo", *stereo, 8, ingest);
  ASSERT_TRUE(version.ok()) << version.status().ToString();

  auto metadata = db_->Describe("stereo");
  ASSERT_TRUE(metadata.ok());
  EXPECT_EQ(metadata->spherical.stereo, StereoMode::kStereoTopBottom);
  EXPECT_EQ(metadata->height, 64);

  // Read back and unpack each eye; both must match the source eye views.
  auto frames = db_->ReadFrames("stereo", 2, 2, 0);
  ASSERT_TRUE(frames.ok());
  Frame original = stereo->FrameAt(2);
  for (Eye eye : {Eye::kLeft, Eye::kRight}) {
    auto decoded_eye = ExtractEyeView((*frames)[0], eye);
    auto original_eye = ExtractEyeView(original, eye);
    ASSERT_TRUE(decoded_eye.ok());
    ASSERT_TRUE(original_eye.ok());
    auto psnr = LumaPsnr(*original_eye, *decoded_eye);
    ASSERT_TRUE(psnr.ok());
    EXPECT_GT(*psnr, 30.0);
  }
  ASSERT_TRUE(db_->Drop("stereo").ok());
}

// ------------------------------------------------------------- Live ingest

TEST_F(CoreTest, LiveIngestCheckpointsAndFinishes) {
  IngestOptions ingest;
  ingest.tile_rows = 2;
  ingest.tile_cols = 2;
  ingest.frames_per_segment = 8;
  ingest.fps = 8.0;
  ingest.ladder = {{"high", 14}, {"low", 42}};
  auto live = db_->StartLiveIngest("live", 128, 64, ingest);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  // Push 1.5 segments, checkpoint after the first full one.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*live)->AppendFrame(scene_->FrameAt(i)).ok());
  }
  EXPECT_EQ((*live)->segments_written(), 1);
  auto v1 = (*live)->Checkpoint();
  ASSERT_TRUE(v1.ok());

  // A viewer can stream the checkpoint while capture continues.
  auto checkpoint_md = db_->storage()->GetVideoVersion("live", *v1);
  ASSERT_TRUE(checkpoint_md.ok());
  EXPECT_TRUE(checkpoint_md->streaming);
  EXPECT_EQ(checkpoint_md->segment_count(), 1);
  SessionOptions session = BaseSession(StreamingApproach::kVisualCloud);
  auto stats =
      SimulateSession(db_->storage(), *checkpoint_md, MakeTrace(), session);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->bytes_sent, 0u);

  for (int i = 8; i < 12; ++i) {
    ASSERT_TRUE((*live)->AppendFrame(scene_->FrameAt(i)).ok());
  }
  auto final_version = (*live)->Close();
  ASSERT_TRUE(final_version.ok());
  EXPECT_GT(*final_version, *v1);
  auto final_md = db_->Describe("live");
  ASSERT_TRUE(final_md.ok());
  EXPECT_FALSE(final_md->streaming);
  // The partial 4-frame segment was flushed as a short segment.
  EXPECT_EQ(final_md->segment_count(), 2);
  EXPECT_EQ(final_md->segments[1].frame_count, 4u);
  // Both versions share the data directory.
  EXPECT_EQ(final_md->DataDir(), checkpoint_md->DataDir());
  ASSERT_TRUE(db_->Drop("live").ok());
}

TEST_F(CoreTest, LiveIngestValidation) {
  IngestOptions ingest;
  ingest.frames_per_segment = 4;
  ingest.ladder = {{"only", 30}};
  auto live = db_->StartLiveIngest("liveval", 128, 64, ingest);
  ASSERT_TRUE(live.ok());
  // Wrong frame size rejected.
  EXPECT_TRUE((*live)->AppendFrame(Frame(64, 64)).IsInvalidArgument());
  // Checkpoint before any full segment rejected.
  EXPECT_TRUE((*live)->Checkpoint().status().IsInvalidArgument());
  // After Finish, the session is closed.
  ASSERT_TRUE((*live)->AppendFrame(scene_->FrameAt(0)).ok());
  ASSERT_TRUE((*live)->AppendFrame(scene_->FrameAt(1)).ok());
  ASSERT_TRUE((*live)->AppendFrame(scene_->FrameAt(2)).ok());
  ASSERT_TRUE((*live)->AppendFrame(scene_->FrameAt(3)).ok());
  ASSERT_TRUE((*live)->Close().ok());
  EXPECT_TRUE((*live)->AppendFrame(scene_->FrameAt(4)).IsAborted());
  EXPECT_TRUE((*live)->Close().status().IsAborted());
  ASSERT_TRUE(db_->Drop("liveval").ok());
  // Bad dimensions rejected up front.
  EXPECT_FALSE(db_->StartLiveIngest("bad", 100, 64, ingest).ok());
}

void ExpectSameCatalog(const VideoMetadata& a, const VideoMetadata& b) {
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t s = 0; s < a.segments.size(); ++s) {
    EXPECT_EQ(a.segments[s].start_frame, b.segments[s].start_frame);
    EXPECT_EQ(a.segments[s].frame_count, b.segments[s].frame_count);
  }
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].byte_size, b.cells[i].byte_size) << "cell " << i;
    EXPECT_EQ(a.cells[i].crc32, b.cells[i].crc32) << "cell " << i;
  }
}

TEST_F(CoreTest, IngestWrapperMatchesManualSession) {
  // The offline Ingest entry point is a thin wrapper over
  // LiveIngestSession; driving the session by hand (same chunking: every
  // frame appended in order, Close at the end) must produce byte-identical
  // cells.
  IngestOptions ingest;
  ingest.tile_rows = 2;
  ingest.tile_cols = 2;
  ingest.frames_per_segment = 8;
  ingest.fps = 8.0;
  ingest.ladder = {{"high", 14}, {"low", 42}};
  std::vector<Frame> frames;
  for (int i = 0; i < 12; ++i) frames.push_back(scene_->FrameAt(i));

  auto wrapped = db_->Ingest("wrap_a", frames, ingest);
  ASSERT_TRUE(wrapped.ok()) << wrapped.status().ToString();

  auto session = db_->StartLiveIngest("wrap_b", 128, 64, ingest);
  ASSERT_TRUE(session.ok());
  for (const Frame& frame : frames) {
    ASSERT_TRUE((*session)->AppendFrame(frame).ok());
  }
  auto manual = (*session)->Close();
  ASSERT_TRUE(manual.ok()) << manual.status().ToString();

  auto a = db_->Describe("wrap_a");
  auto b = db_->Describe("wrap_b");
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectSameCatalog(*a, *b);
  ASSERT_TRUE(db_->Drop("wrap_a").ok());
  ASSERT_TRUE(db_->Drop("wrap_b").ok());
}

TEST_F(CoreTest, FinishSegmentSplicesShortSegment) {
  // FinishSegment cuts the buffered partial segment immediately — the
  // ad-break splice: the catalog gains a short segment mid-stream and
  // capture continues on a fresh segment boundary.
  IngestOptions ingest;
  ingest.tile_rows = 1;
  ingest.tile_cols = 1;
  ingest.frames_per_segment = 4;
  ingest.fps = 4.0;
  ingest.ladder = {{"only", 30}};
  auto live = db_->StartLiveIngest("splice", 128, 64, ingest);
  ASSERT_TRUE(live.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*live)->AppendFrame(scene_->FrameAt(i)).ok());
  }
  EXPECT_EQ((*live)->segments_written(), 1);  // frame 4 is buffered
  ASSERT_TRUE((*live)->FinishSegment().ok());
  EXPECT_EQ((*live)->segments_written(), 2);
  ASSERT_TRUE((*live)->FinishSegment().ok());  // nothing buffered: no-op
  EXPECT_EQ((*live)->segments_written(), 2);
  for (int i = 5; i < 9; ++i) {
    ASSERT_TRUE((*live)->AppendFrame(scene_->FrameAt(i)).ok());
  }
  ASSERT_TRUE((*live)->Close().ok());
  auto metadata = db_->Describe("splice");
  ASSERT_TRUE(metadata.ok());
  ASSERT_EQ(metadata->segment_count(), 3);
  EXPECT_EQ(metadata->segments[0].frame_count, 4u);
  EXPECT_EQ(metadata->segments[1].frame_count, 1u);
  EXPECT_EQ(metadata->segments[2].frame_count, 4u);
  EXPECT_EQ(metadata->segments[2].start_frame, 5u);
  ASSERT_TRUE(db_->Drop("splice").ok());
}

TEST_F(CoreTest, PublishedLiveCatalogMatchesOfflineIngest) {
  // The append-only live path (publish a streaming checkpoint after every
  // segment) must converge, once caught up, to byte-identical cells as the
  // same video ingested offline in one shot — the live/archived equivalence
  // the catalog API promises.
  IngestOptions ingest;
  ingest.tile_rows = 2;
  ingest.tile_cols = 2;
  ingest.frames_per_segment = 8;
  ingest.fps = 8.0;
  ingest.ladder = {{"high", 14}, {"low", 42}};

  auto offline = db_->IngestScene("eq_offline", *scene_, 20, ingest);
  ASSERT_TRUE(offline.ok());

  LiveIngestOptions live_options;
  live_options.ingest = ingest;
  live_options.publish_segments = true;
  auto live = db_->StartLiveIngest("eq_live", 128, 64, live_options);
  ASSERT_TRUE(live.ok());
  uint32_t previous_version = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*live)->AppendFrame(scene_->FrameAt(i)).ok());
    // Every completed segment publishes automatically, and each publish is
    // a fresh catalog version over the shared data directory.
    if ((i + 1) % 8 == 0) {
      EXPECT_GT((*live)->last_published_version(), previous_version);
      previous_version = (*live)->last_published_version();
      auto checkpoint = db_->storage()->GetVideoVersion(
          "eq_live", (*live)->last_published_version());
      ASSERT_TRUE(checkpoint.ok());
      EXPECT_TRUE(checkpoint->streaming);
      EXPECT_EQ(checkpoint->segment_count(), (i + 1) / 8);
    }
  }
  auto final_version = (*live)->Close();
  ASSERT_TRUE(final_version.ok());

  auto offline_md = db_->Describe("eq_offline");
  auto live_md = db_->Describe("eq_live");
  ASSERT_TRUE(offline_md.ok() && live_md.ok());
  EXPECT_FALSE(live_md->streaming);
  ExpectSameCatalog(*offline_md, *live_md);

  // Not just the index: the cell payloads themselves are byte-identical.
  for (int tile = 0; tile < 4; ++tile) {
    auto a = db_->storage()->ReadCell(*offline_md, 1, tile, 0);
    auto b = db_->storage()->ReadCell(*live_md, 1, tile, 0);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(**a, **b);
  }
  ASSERT_TRUE(db_->Drop("eq_offline").ok());
  ASSERT_TRUE(db_->Drop("eq_live").ok());
}

// ------------------------------------------------------- Versioned reingest

TEST_F(CoreTest, ReingestCreatesNewVersion) {
  SceneOptions scene_options;
  scene_options.width = 128;
  scene_options.height = 64;
  auto scene = NewTimelapseScene(scene_options);
  IngestOptions ingest;
  ingest.tile_rows = 1;
  ingest.tile_cols = 1;
  ingest.frames_per_segment = 8;
  ingest.ladder = {{"only", 30}};
  auto v1 = db_->IngestScene("versioned", *scene, 8, ingest);
  ASSERT_TRUE(v1.ok());
  auto v2 = db_->IngestScene("versioned", *scene, 16, ingest);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, *v1 + 1);
  auto latest = db_->Describe("versioned");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->segment_count(), 2);
  ASSERT_TRUE(db_->Drop("versioned").ok());
  EXPECT_TRUE(db_->Describe("versioned").status().IsNotFound());
}

// -------------------------------------------------------------- Plan cache

TEST(PlanCacheTest, ExactMemoizationHitsAndMisses) {
  PlanCache cache;
  PlanKey key;
  key.segment = 3;
  key.approach = static_cast<int>(StreamingApproach::kVisualCloud);
  key.adaptive = true;
  key.high_quality = 0;
  key.yaw = 1.25;
  key.pitch = 0.5;
  key.budget_bytes = 123456.0;
  key.popular = {1, 5, 9};

  PlanCache::Entry entry;
  EXPECT_FALSE(cache.Lookup(key, &entry));
  entry.plan = {0, 1, 2, 0};
  entry.downgrades = 2;
  cache.Insert(key, entry);

  PlanCache::Entry out;
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out.plan, (TileQualityPlan{0, 1, 2, 0}));
  EXPECT_EQ(out.downgrades, 2);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NEAR(cache.stats().HitRate(), 0.5, 1e-9);

  // Equality is exact: a hair of orientation difference is a different
  // key (quantization lives only in the hash, for bucketing).
  PlanKey near = key;
  near.yaw += 1e-9;
  EXPECT_FALSE(cache.Lookup(near, &out));
  PlanKey popular = key;
  popular.popular = {1, 5};
  EXPECT_FALSE(cache.Lookup(popular, &out));
}

TEST(PlanCacheTest, GenerationalFlushBoundsSize) {
  PlanCache cache(/*max_entries=*/4);
  for (int i = 0; i < 10; ++i) {
    PlanKey key;
    key.segment = i;
    cache.Insert(key, PlanCache::Entry{{0}, 0});
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_GT(cache.size(), 0u);
}

TEST_F(CoreTest, PlanCacheKeepsSessionsByteIdentical) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  HeadTrace trace = MakeTrace();

  // A constrained budget so adaptive fitting (the expensive, downgrade-
  // producing path) actually runs and must be replayed faithfully on hits.
  SessionOptions plain = BaseSession(StreamingApproach::kVisualCloud);
  plain.network.bandwidth_bps = 2e6;

  auto uncached = SimulateSession(db_->storage(), *metadata, trace, plain);
  ASSERT_TRUE(uncached.ok());

  PlanCache cache;
  SessionOptions cached_options = plain;
  cached_options.plan_cache = &cache;
  auto first = SimulateSession(db_->storage(), *metadata, trace,
                               cached_options);
  ASSERT_TRUE(first.ok());
  auto second = SimulateSession(db_->storage(), *metadata, trace,
                                cached_options);
  ASSERT_TRUE(second.ok());

  // Byte-identity: the cache is a pure memoizer.
  for (const SessionStats* stats : {&*first, &*second}) {
    EXPECT_EQ(stats->bytes_sent, uncached->bytes_sent);
    EXPECT_EQ(stats->segments, uncached->segments);
    EXPECT_EQ(stats->stall_events, uncached->stall_events);
    EXPECT_DOUBLE_EQ(stats->stall_seconds, uncached->stall_seconds);
    EXPECT_DOUBLE_EQ(stats->startup_delay, uncached->startup_delay);
    EXPECT_DOUBLE_EQ(stats->mean_inview_quality,
                     uncached->mean_inview_quality);
  }

  // The identical replica shares every plan: the second session's segments
  // are all hits.
  PlanCache::Stats stats = cache.stats();
  EXPECT_GE(stats.hits, static_cast<uint64_t>(metadata->segment_count()));
  EXPECT_GT(stats.misses, 0u);
}

TEST_F(CoreTest, PlanCacheServesUniformDash) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  HeadTrace trace = MakeTrace();

  // View-agnostic approach: even viewers with different gazes share plans
  // (the key zeroes the view fields).
  PlanCache cache;
  SessionOptions options = BaseSession(StreamingApproach::kUniformDash);
  options.plan_cache = &cache;
  auto a = SimulateSession(db_->storage(), *metadata, trace, options);
  ASSERT_TRUE(a.ok());
  auto b = SimulateSession(db_->storage(), *metadata, MakeTrace(0.7),
                           options);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->bytes_sent, b->bytes_sent) << "uniform plans are view-free";
  EXPECT_GE(cache.stats().hits,
            static_cast<uint64_t>(metadata->segment_count()));
}

}  // namespace
}  // namespace vc
