#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/visualcloud.h"
#include "obs/metrics.h"
#include "query/executor.h"
#include "query/parser.h"
#include "view/catalog.h"
#include "view/definition.h"
#include "view/maintainer.h"

namespace vc {
namespace {

/// One in-memory catalog shared by all view tests: the same 4-second venice
/// clip the query tests use (4x4 tiles, 8-frame segments, 3 rungs). Tests
/// that need their own catalog timeline (staleness, live feeds) ingest
/// under per-test names so `venice` stays at v1 throughout.
class ViewTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = NewMemEnv().release();
    VisualCloudOptions options;
    options.storage.env = env_;
    options.storage.root = "/vcdb";
    auto db = VisualCloud::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = db->release();

    auto version = db_->IngestScene("venice", *Scene(), 32, Ingest44());
    ASSERT_TRUE(version.ok()) << version.status().ToString();
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete env_;
    env_ = nullptr;
  }

  static std::unique_ptr<SceneGenerator> Scene() {
    SceneOptions scene_options;
    scene_options.width = 128;
    scene_options.height = 64;
    return NewVeniceScene(scene_options);
  }

  static IngestOptions Ingest44() {
    IngestOptions ingest;
    ingest.tile_rows = 4;
    ingest.tile_cols = 4;
    ingest.frames_per_segment = 8;
    ingest.fps = 8.0;
    ingest.ladder = {{"high", 14}, {"medium", 28}, {"low", 42}};
    return ingest;
  }

  static IngestOptions Ingest22() {
    IngestOptions ingest;
    ingest.tile_rows = 2;
    ingest.tile_cols = 2;
    ingest.frames_per_segment = 8;
    ingest.fps = 8.0;
    ingest.ladder = {{"high", 14}, {"low", 42}};
    return ingest;
  }

  static StorageManager* storage() { return db_->storage(); }

  static VisualCloud* db_;
  static Env* env_;
};

VisualCloud* ViewTest::db_ = nullptr;
Env* ViewTest::env_ = nullptr;

// --- definition format -----------------------------------------------------

TEST(ViewDefinitionTest, MakeSerializeParseRoundTrip) {
  auto def = MakeViewDefinition(
      "periph",
      Slice("scan(demo) | quality(high) | degrade(low) | encode | "
            "store(periph)"));
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->name, "periph");
  EXPECT_EQ(def->source, "demo");
  EXPECT_EQ(def->source_version, 0u);  // never maintained
  EXPECT_EQ(def->segments, 0);

  auto reparsed = ParseViewDefinition(Slice(def->Serialize()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->name, def->name);
  EXPECT_EQ(reparsed->source, def->source);
  EXPECT_EQ(reparsed->query, def->query);
  EXPECT_EQ(reparsed->Serialize(), def->Serialize());

  // Maintained progress fields survive the trip too.
  reparsed->source_version = 7;
  reparsed->segments = 12;
  auto again = ParseViewDefinition(Slice(reparsed->Serialize()));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->source_version, 7u);
  EXPECT_EQ(again->segments, 12);
}

TEST(ViewDefinitionTest, MakeRejectsBadDefiningQueries) {
  // Store target must equal the view name.
  EXPECT_FALSE(
      MakeViewDefinition("v", Slice("scan(a) | encode | store(w)")).ok());
  // A sink is required, and it must be store.
  EXPECT_FALSE(MakeViewDefinition("v", Slice("scan(a) | encode")).ok());
  // Standing-query syntax is not a view definition.
  EXPECT_FALSE(MakeViewDefinition(
                   "v", Slice("scan(a) | encode | store(v) | subscribe(v)"))
                   .ok());
  // Unions cannot be maintained incrementally.
  Query u = Query::Union({Query::Scan("a"), Query::Scan("b")})
                .Encode()
                .Store("v");
  EXPECT_FALSE(MakeViewDefinition("v", Slice(u.ToString())).ok());
  // The query must parse at all.
  EXPECT_FALSE(MakeViewDefinition("v", Slice("scan(a) | warp(2)")).ok());
}

TEST(ViewDefinitionTest, ParserRejectsCorruption) {
  auto def = MakeViewDefinition("v", Slice("scan(a) | encode | store(v)"));
  ASSERT_TRUE(def.ok());
  const std::string good = def->Serialize();
  ASSERT_TRUE(ParseViewDefinition(Slice(good)).ok());

  EXPECT_FALSE(ParseViewDefinition(Slice("")).ok());
  EXPECT_FALSE(ParseViewDefinition(Slice("VCVIEW 2\n")).ok());
  // Each keyword line is required exactly once.
  auto drop_line = [&](const std::string& keyword) {
    std::string text;
    size_t start = 0;
    while (start < good.size()) {
      size_t end = good.find('\n', start);
      std::string line = good.substr(start, end - start);
      if (line.compare(0, keyword.size(), keyword) != 0) text += line + "\n";
      start = end + 1;
    }
    return text;
  };
  for (const char* keyword : {"name", "source", "segments", "query"}) {
    EXPECT_FALSE(ParseViewDefinition(Slice(drop_line(keyword))).ok())
        << "missing '" << keyword << "' line must be rejected";
  }
  EXPECT_FALSE(ParseViewDefinition(Slice(good + "name other\n")).ok())
      << "duplicate lines must be rejected";
  // Maintained segments without a maintained source version is nonsense.
  ViewDefinition bad = *def;
  bad.segments = 3;
  EXPECT_FALSE(ParseViewDefinition(Slice(bad.Serialize())).ok());
  // The query line must store into the named view and scan the named
  // source.
  ViewDefinition wrong = *def;
  wrong.source = "b";
  EXPECT_FALSE(ParseViewDefinition(Slice(wrong.Serialize())).ok());
}

// --- catalog ---------------------------------------------------------------

TEST(ViewCatalogTest, SaveLoadListDrop) {
  auto env = NewMemEnv();
  ViewCatalog catalog(env.get(), "/store");

  auto list = catalog.List();
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list->empty());

  auto a = MakeViewDefinition("alpha", Slice("scan(s) | encode | store(alpha)"));
  auto b = MakeViewDefinition("beta", Slice("scan(s) | encode | store(beta)"));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(catalog.Save(*b).ok());
  ASSERT_TRUE(catalog.Save(*a).ok());

  list = catalog.List();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, (std::vector<std::string>{"alpha", "beta"}));

  auto loaded = catalog.Load("alpha");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Serialize(), a->Serialize());
  EXPECT_FALSE(catalog.Load("gamma").ok());

  ASSERT_TRUE(catalog.Drop("alpha").ok());
  EXPECT_FALSE(catalog.Load("alpha").ok());
  EXPECT_FALSE(catalog.Drop("alpha").ok());
  list = catalog.List();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, (std::vector<std::string>{"beta"}));
}

// --- maintainer + candidates ----------------------------------------------

TEST_F(ViewTest, MaintainerMaterializesAndCandidatesTrackFreshness) {
  ASSERT_TRUE(db_->IngestScene("beach", *Scene(), 16, Ingest22()).ok());

  ViewMaintainer maintainer(db_);
  ASSERT_TRUE(maintainer
                  .CreateView("beachview",
                              Slice("scan(beach) | quality(high) | encode | "
                                    "store(beachview)"))
                  .ok());

  auto has_candidate = [&]() {
    auto candidates = maintainer.catalog()->Candidates(*storage());
    EXPECT_TRUE(candidates.ok());
    return std::any_of(candidates->begin(), candidates->end(),
                       [](const MaterializedViewInfo& info) {
                         return info.name == "beachview";
                       });
  };

  // Defined but never maintained: not offered to the optimizer.
  EXPECT_FALSE(has_candidate());

  ASSERT_TRUE(maintainer.Maintain("beachview").ok());
  auto view_md = storage()->GetVideo("beachview");
  ASSERT_TRUE(view_md.ok()) << view_md.status().ToString();
  EXPECT_EQ(view_md->segment_count(), 2);
  EXPECT_EQ(view_md->quality_count(), 1);
  EXPECT_TRUE(has_candidate());

  // A second catch-up with no new source commits is a no-op.
  ASSERT_TRUE(maintainer.Maintain("beachview").ok());
  auto results = maintainer.Results("beachview");
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);

  // Re-ingesting the source bumps its version: the view is stale and
  // silently stops matching.
  ASSERT_TRUE(db_->IngestScene("beach", *Scene(), 16, Ingest22()).ok());
  EXPECT_FALSE(has_candidate());

  // A refresh re-derives against the new version and the view is fresh
  // again.
  ASSERT_TRUE(maintainer.RefreshView("beachview").ok());
  EXPECT_TRUE(has_candidate());
  auto def = maintainer.catalog()->Load("beachview");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->source_version, 2u);
  EXPECT_EQ(def->segments, 2);
}

TEST_F(ViewTest, RegisterRejectsUnsupportedShapes) {
  ViewMaintainer maintainer(db_);
  // No subscribe.
  EXPECT_FALSE(
      maintainer.Register(Slice("scan(venice) | quality(high) | encode")).ok());
  // No encode sink under the subscribe.
  EXPECT_FALSE(
      maintainer.Register(Slice("scan(venice) | quality(high) | subscribe(w)"))
          .ok());
  // Store target must equal the subscribe name.
  EXPECT_FALSE(maintainer
                   .Register(Slice("scan(venice) | quality(high) | encode | "
                                   "store(a) | subscribe(b)"))
                   .ok());
  // Unions are not maintainable.
  Query u = Query::Union({Query::Scan("a"), Query::Scan("b")})
                .Encode()
                .Subscribe("u");
  EXPECT_FALSE(maintainer.Register(Slice(u.ToString())).ok());

  auto name = maintainer.Register(
      Slice("scan(venice) | quality(high) | encode | subscribe(w)"));
  ASSERT_TRUE(name.ok()) << name.status().ToString();
  EXPECT_EQ(*name, "w");
  // Duplicate registration.
  EXPECT_FALSE(
      maintainer.Register(Slice("scan(venice) | encode | subscribe(w)")).ok());
}

// --- view-matching rewrite: served bytes are the baseline's bytes ----------

TEST_F(ViewTest, SubsumedQueryServesFromViewByteIdentical) {
  // A degrade plan mixes rungs, so the baseline must transcode.
  Query chain = Query::Scan("venice")
                    .Viewport(kPi, kPi / 2, DegToRad(90), DegToRad(60))
                    .QualityFloor("high")
                    .Degrade("low");
  Query q = chain.Encode();

  ViewMaintainer maintainer(db_);
  ASSERT_TRUE(
      maintainer.CreateView("periph", Slice(chain.Encode().Store("periph").ToString()))
          .ok());
  ASSERT_TRUE(maintainer.Maintain("periph").ok());

  const CostModel pinned;
  OptimizeOptions plain;
  plain.cost_model = &pinned;
  auto baseline_plan = Optimize(q, storage(), plain);
  ASSERT_TRUE(baseline_plan.ok()) << baseline_plan.status().ToString();
  EXPECT_FALSE(baseline_plan->transcode_free);
  EXPECT_TRUE(baseline_plan->view_served.empty());
  auto baseline = ExecutePlan(*baseline_plan, storage());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_TRUE(baseline->has_encoded);
  EXPECT_GT(baseline->transcodes, 0);

  auto candidates = maintainer.catalog()->Candidates(*storage());
  ASSERT_TRUE(candidates.ok());
  MetricsSnapshot before = MetricRegistry::Global().Snapshot();

  OptimizeOptions with_views = plain;
  with_views.views = &*candidates;
  auto served_plan = Optimize(q, storage(), with_views);
  ASSERT_TRUE(served_plan.ok()) << served_plan.status().ToString();
  EXPECT_EQ(served_plan->view_served, "periph");
  EXPECT_TRUE(served_plan->transcode_free);

  MetricsSnapshot after = MetricRegistry::Global().Snapshot();
  EXPECT_GT(after.counters["query.view_hits"],
            before.counters["query.view_hits"]);

  // The costed alternatives name the view scan as chosen and keep the
  // displaced transcode visible.
  bool view_chosen = false, reencode_listed = false;
  for (const PlanAlternative& alt : served_plan->alternatives) {
    if (alt.name == "view-scan(periph)") view_chosen = alt.chosen;
    if (alt.name == "re-encode") reencode_listed = !alt.chosen;
  }
  EXPECT_TRUE(view_chosen);
  EXPECT_TRUE(reencode_listed);

  // Serving from the view changes the work, never the bytes.
  auto served = ExecutePlan(*served_plan, storage());
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_TRUE(served->has_encoded);
  EXPECT_EQ(served->transcodes, 0);
  EXPECT_EQ(served->encoded.Serialize(), baseline->encoded.Serialize());
}

// --- incremental maintenance == full recompute -----------------------------

TEST_F(ViewTest, IncrementalMaintenanceMatchesFullRecompute) {
  ViewMaintainer maintainer(db_);
  // Registered before the source exists: maintenance no-ops until frames
  // arrive, then rides every live checkpoint.
  ASSERT_TRUE(maintainer
                  .CreateView("feedview",
                              Slice("scan(feed) | quality(high) | encode | "
                                    "store(feedview)"))
                  .ok());
  ASSERT_TRUE(maintainer.Maintain("feedview").ok());

  LiveIngestOptions live_options;
  live_options.ingest = Ingest22();
  live_options.publish_segments = true;
  auto live = db_->StartLiveIngest("feed", 128, 64, live_options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  auto scene = Scene();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*live)->AppendFrame(scene->FrameAt(i)).ok());
  }
  ASSERT_TRUE((*live)->Close().ok());
  ASSERT_TRUE(maintainer.status().ok()) << maintainer.status().ToString();

  // 20 frames at 8/segment = 3 slices (8, 8, 4), each maintained as its
  // own emission when its checkpoint committed.
  auto incremental = maintainer.Results("feedview");
  ASSERT_TRUE(incremental.ok());
  ASSERT_EQ(incremental->size(), 3u);
  for (size_t i = 0; i < incremental->size(); ++i) {
    EXPECT_EQ((*incremental)[i].view_segment, static_cast<int>(i));
    EXPECT_GT((*incremental)[i].bytes, 0u);
  }

  auto inc_md = storage()->GetVideo("feedview");
  ASSERT_TRUE(inc_md.ok()) << inc_md.status().ToString();
  EXPECT_FALSE(inc_md->streaming);
  ASSERT_EQ(inc_md->segment_count(), 3);

  // Full recompute into a fresh view version.
  ASSERT_TRUE(maintainer.RefreshView("feedview").ok());
  auto full_md = storage()->GetVideo("feedview");
  ASSERT_TRUE(full_md.ok());
  EXPECT_GT(full_md->version, inc_md->version);
  ASSERT_EQ(full_md->segment_count(), 3);

  // Per-segment emissions are byte-identical between the two timelines
  // (source_version may differ: incremental saw intermediate checkpoints).
  auto full = maintainer.Results("feedview");
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), incremental->size());
  for (size_t i = 0; i < full->size(); ++i) {
    EXPECT_EQ((*full)[i].source_segment, (*incremental)[i].source_segment);
    EXPECT_EQ((*full)[i].bytes, (*incremental)[i].bytes) << "emission " << i;
    EXPECT_EQ((*full)[i].checksum, (*incremental)[i].checksum)
        << "emission " << i;
  }

  // And so are the stored view cells themselves.
  for (int segment = 0; segment < 3; ++segment) {
    for (int tile = 0; tile < inc_md->tile_count(); ++tile) {
      auto a = storage()->ReadCell(*inc_md, segment, tile, 0);
      auto b = storage()->ReadCell(*full_md, segment, tile, 0);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(**a, **b) << "segment " << segment << " tile " << tile;
    }
  }
}

// --- standing-query determinism --------------------------------------------

/// Runs the full live scenario — fresh store, standing query registered
/// up front, 20 frames fed through a publishing live session — and returns
/// the per-segment emissions. `io_threads` > 0 turns on the async cell
/// I/O pool (the prefetch path).
std::vector<StandingQueryResult> RunStandingScenario(int io_threads) {
  std::unique_ptr<Env> env = NewMemEnv();
  VisualCloudOptions options;
  options.storage.env = env.get();
  options.storage.root = "/db";
  options.storage.io_threads = io_threads;
  auto db = VisualCloud::Open(options);
  EXPECT_TRUE(db.ok());

  std::vector<StandingQueryResult> results;
  {
    ViewMaintainer maintainer(db->get());
    auto name = maintainer.Register(
        Slice("scan(feed) | quality(high) | encode | subscribe(watch)"));
    EXPECT_TRUE(name.ok()) << name.status().ToString();

    SceneOptions scene_options;
    scene_options.width = 128;
    scene_options.height = 64;
    auto scene = NewVeniceScene(scene_options);

    IngestOptions ingest;
    ingest.tile_rows = 2;
    ingest.tile_cols = 2;
    ingest.frames_per_segment = 8;
    ingest.fps = 8.0;
    ingest.ladder = {{"high", 14}, {"low", 42}};
    LiveIngestOptions live_options;
    live_options.ingest = ingest;
    live_options.publish_segments = true;
    auto live = (*db)->StartLiveIngest("feed", 128, 64, live_options);
    EXPECT_TRUE(live.ok());
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE((*live)->AppendFrame(scene->FrameAt(i)).ok());
    }
    EXPECT_TRUE((*live)->Close().ok());
    EXPECT_TRUE(maintainer.status().ok()) << maintainer.status().ToString();

    auto emitted = maintainer.Results("watch");
    EXPECT_TRUE(emitted.ok());
    if (emitted.ok()) results = *emitted;
  }
  return results;
}

TEST(StandingQueryTest, ResultsDeterministicAcrossRerunsAndPrefetchModes) {
  std::vector<StandingQueryResult> sync = RunStandingScenario(0);
  std::vector<StandingQueryResult> rerun = RunStandingScenario(0);
  std::vector<StandingQueryResult> prefetch = RunStandingScenario(2);

  ASSERT_EQ(sync.size(), 3u);
  for (const auto* run : {&rerun, &prefetch}) {
    ASSERT_EQ(run->size(), sync.size());
    for (size_t i = 0; i < sync.size(); ++i) {
      EXPECT_EQ((*run)[i].index, sync[i].index);
      EXPECT_EQ((*run)[i].source_segment, sync[i].source_segment);
      EXPECT_EQ((*run)[i].bytes, sync[i].bytes) << "emission " << i;
      EXPECT_EQ((*run)[i].checksum, sync[i].checksum) << "emission " << i;
      EXPECT_EQ((*run)[i].view_segment, -1);  // plain standing query
    }
  }
}

TEST_F(ViewTest, StandingCatchUpOverArchivedVideoIsRepeatable) {
  auto run = [&]() {
    ViewMaintainer maintainer(db_);
    auto name = maintainer.Register(
        Slice("scan(venice) | quality(medium) | encode | subscribe(replay)"));
    EXPECT_TRUE(name.ok()) << name.status().ToString();
    EXPECT_TRUE(maintainer.Maintain("replay").ok());
    auto results = maintainer.Results("replay");
    EXPECT_TRUE(results.ok());
    return results.ok() ? *results : std::vector<StandingQueryResult>{};
  };
  std::vector<StandingQueryResult> first = run();
  std::vector<StandingQueryResult> second = run();
  ASSERT_EQ(first.size(), 4u);  // one emission per venice segment
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].source_segment, first[i].source_segment);
    EXPECT_EQ(second[i].bytes, first[i].bytes);
    EXPECT_EQ(second[i].checksum, first[i].checksum);
    EXPECT_GT(first[i].cells_scanned, 0);
  }
}

}  // namespace
}  // namespace vc
