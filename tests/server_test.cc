#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/session.h"
#include "core/visualcloud.h"
#include "predict/trace_synthesizer.h"
#include "server/cluster_server.h"
#include "server/live_feed.h"
#include "server/streaming_server.h"
#include "storage/sharded_store.h"
#include "streaming/manifest.h"

namespace vc {
namespace {

/// Shared fixture: one in-memory VisualCloud with a small venice clip
/// ingested once (encoding dominates test time).
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = NewMemEnv().release();
    VisualCloudOptions options;
    options.storage.env = env_;
    options.storage.root = "/vcdb";
    auto db = VisualCloud::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = db->release();

    SceneOptions scene_options;
    scene_options.width = 128;
    scene_options.height = 64;
    auto scene = NewVeniceScene(scene_options);

    IngestOptions ingest;
    ingest.tile_rows = 4;
    ingest.tile_cols = 4;
    ingest.frames_per_segment = 8;
    ingest.fps = 8.0;  // 1-second segments with 8 frames
    ingest.ladder = {{"high", 14}, {"medium", 28}, {"low", 42}};
    auto version = db_->IngestScene("venice", *scene, 32, ingest);
    ASSERT_TRUE(version.ok()) << version.status().ToString();
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete env_;
    env_ = nullptr;
  }

  static HeadTrace MakeTrace(double yaw_rate) {
    std::vector<TraceSample> samples;
    for (int i = 0; i <= 32 * 4; ++i) {
      double t = i / 32.0 * 4.0;  // covers the 4-second clip
      samples.push_back({t, {WrapYaw(1.0 + yaw_rate * t), kPi / 2}});
    }
    return *HeadTrace::FromSamples(std::move(samples));
  }

  static SessionOptions BaseSession() {
    SessionOptions options;
    options.network.bandwidth_bps = 50e6;
    options.network.latency_seconds = 0.01;
    options.viewport.width = 48;
    options.viewport.height = 48;
    options.viewport.fov_yaw = DegToRad(90.0);
    options.viewport.fov_pitch = DegToRad(75.0);
    return options;
  }

  /// `count` viewers with distinct traces and network seeds, arrivals
  /// staggered 100 ms apart.
  static std::vector<ViewerRequest> MakeViewers(int count) {
    std::vector<ViewerRequest> viewers;
    for (int i = 0; i < count; ++i) {
      ViewerRequest viewer;
      viewer.trace = MakeTrace(0.2 + 0.1 * i);
      viewer.session = BaseSession();
      viewer.session.network.seed = 100 + i;
      viewer.arrival_seconds = 0.1 * i;
      viewers.push_back(std::move(viewer));
    }
    return viewers;
  }

  static VideoMetadata Metadata() { return *db_->Describe("venice"); }

  static Env* env_;
  static VisualCloud* db_;
};

Env* ServerTest::env_ = nullptr;
VisualCloud* ServerTest::db_ = nullptr;

void ExpectSameStats(const SessionStats& a, const SessionStats& b) {
  EXPECT_EQ(a.approach, b.approach);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.startup_delay, b.startup_delay);
  EXPECT_EQ(a.stall_seconds, b.stall_seconds);
  EXPECT_EQ(a.stall_events, b.stall_events);
  EXPECT_EQ(a.duration_seconds, b.duration_seconds);
  EXPECT_EQ(a.mean_viewport_psnr, b.mean_viewport_psnr);
  EXPECT_EQ(a.min_viewport_psnr, b.min_viewport_psnr);
  EXPECT_EQ(a.quality_samples, b.quality_samples);
  EXPECT_EQ(a.mean_inview_quality, b.mean_inview_quality);
  EXPECT_EQ(a.transfer_faults, b.transfer_faults);
  EXPECT_EQ(a.transfer_retries, b.transfer_retries);
  EXPECT_EQ(a.segments_skipped, b.segments_skipped);
}

// ------------------------------------------------------- ClientSession API

TEST_F(ServerTest, WrapperMatchesManualStepLoop) {
  // The SimulateSession compatibility wrapper and a hand-driven
  // ClientSession must produce bit-identical stats.
  VideoMetadata metadata = Metadata();
  HeadTrace trace = MakeTrace(0.3);
  SessionOptions options = BaseSession();

  auto wrapped = SimulateSession(db_->storage(), metadata, trace, options);
  ASSERT_TRUE(wrapped.ok()) << wrapped.status().ToString();

  auto client = ClientSession::Create(db_->storage(), metadata, trace,
                                      options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_FALSE((*client)->done());
  EXPECT_EQ((*client)->next_segment(), 0);
  while (!(*client)->done()) {
    ASSERT_TRUE((*client)->Step((*client)->NextDeadline()).ok());
  }
  EXPECT_EQ((*client)->next_segment(), (*client)->segment_count());
  ExpectSameStats(*wrapped, (*client)->stats());

  // Stepping a finished session is an error, not a crash.
  EXPECT_TRUE((*client)->Step((*client)->wall_seconds() + 1).IsAborted());
}

TEST_F(ServerTest, DeadlinePacingHoldsDownloads) {
  VideoMetadata metadata = Metadata();
  SessionOptions options = BaseSession();
  options.buffer_ahead_seconds = 0.5;
  auto client =
      ClientSession::Create(db_->storage(), metadata, MakeTrace(0.3), options);
  ASSERT_TRUE(client.ok());

  // Before playback starts the session is ready immediately.
  EXPECT_EQ((*client)->NextDeadline(), 0.0);
  ASSERT_TRUE((*client)->Step((*client)->NextDeadline()).ok());
  // After segment 0 the pacing deadline is in the future: segment 1 plays
  // at play_start + 1s, so its download is held until 0.5s before that.
  double deadline = (*client)->NextDeadline();
  EXPECT_GT(deadline, (*client)->wall_seconds());
  // Step() never moves the wall clock backwards.
  ASSERT_TRUE((*client)->Step(deadline).ok());
  EXPECT_GE((*client)->wall_seconds(), deadline);
}

TEST_F(ServerTest, FaultRetryAccounting) {
  // Heavy fault injection over many seeds: every session must finish with
  // consistent accounting (a retry per first fault, a skip per second),
  // and the fault path must actually trigger across the seed sweep.
  VideoMetadata metadata = Metadata();
  int sessions_with_faults = 0;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    SessionOptions options = BaseSession();
    options.network.faults.episodes_per_minute = 240.0;
    options.network.faults.episode_seconds = 2.0;
    options.network.faults.timeout_seconds = 0.5;
    options.network.faults.seed = seed;

    auto stats =
        SimulateSession(db_->storage(), metadata, MakeTrace(0.3), options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_GE(stats->transfer_faults, stats->transfer_retries);
    EXPECT_LE(stats->segments_skipped, stats->transfer_retries);
    EXPECT_EQ(stats->transfer_faults,
              stats->transfer_retries + stats->segments_skipped);
    EXPECT_EQ(stats->segments, metadata.segment_count());
    if (stats->transfer_faults > 0 && stats->transfer_retries > 0) {
      ++sessions_with_faults;
    }
  }
  EXPECT_GT(sessions_with_faults, 0)
      << "fault injection never fired across 16 seeds";
}

// ----------------------------------------------------------- server runs

TEST_F(ServerTest, ServerRunIsDeterministic) {
  // Two runs with identical viewers and seeds give bit-identical stats,
  // regardless of host timing.
  VideoMetadata metadata = Metadata();
  auto run_once = [&]() {
    db_->storage()->ClearCache();
    StreamingServer server(db_->storage(), ServerOptions{});
    auto stats = server.Run(metadata, MakeViewers(6));
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return *stats;
  };
  ServerStats first = run_once();
  ServerStats second = run_once();

  EXPECT_EQ(first.bytes_sent, second.bytes_sent);
  EXPECT_EQ(first.wall_seconds, second.wall_seconds);
  EXPECT_EQ(first.stall_seconds, second.stall_seconds);
  EXPECT_EQ(first.sessions_admitted, second.sessions_admitted);
  EXPECT_EQ(first.sessions_completed, second.sessions_completed);
  EXPECT_EQ(first.cache.hits, second.cache.hits);
  EXPECT_EQ(first.cache.misses, second.cache.misses);
  ASSERT_EQ(first.sessions.size(), second.sessions.size());
  for (size_t i = 0; i < first.sessions.size(); ++i) {
    ExpectSameStats(first.sessions[i], second.sessions[i]);
  }
}

TEST_F(ServerTest, SessionStatsIndependentOfCohortSize) {
  // Scheduler interleaving must not leak between sessions: viewer 0's
  // stats are the same whether it streams alone or among five others.
  // (Popularity sharing is disabled — that coupling is the one deliberate
  // cross-session channel.)
  VideoMetadata metadata = Metadata();
  ServerOptions options;
  options.shared_popularity = false;

  db_->storage()->ClearCache();
  StreamingServer solo_server(db_->storage(), options);
  auto solo = solo_server.Run(metadata, MakeViewers(1));
  ASSERT_TRUE(solo.ok());

  db_->storage()->ClearCache();
  StreamingServer cohort_server(db_->storage(), options);
  auto cohort = cohort_server.Run(metadata, MakeViewers(6));
  ASSERT_TRUE(cohort.ok());

  ASSERT_EQ(solo->sessions.size(), 1u);
  ASSERT_EQ(cohort->sessions.size(), 6u);
  ExpectSameStats(solo->sessions[0], cohort->sessions[0]);
}

TEST_F(ServerTest, SharedCacheServesRepeatViewers) {
  // Six viewers of one video: after the first warms the cache, the rest
  // hit it — the whole point of serving from one storage manager.
  VideoMetadata metadata = Metadata();
  db_->storage()->ClearCache();
  StreamingServer server(db_->storage(), ServerOptions{});
  auto stats = server.Run(metadata, MakeViewers(6));
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->cache.hits, 0u);
  EXPECT_GT(stats->cache.HitRate(), 0.5);
  EXPECT_EQ(stats->sessions_completed, 6);
  EXPECT_GT(stats->bytes_sent, 0u);
  EXPECT_GT(stats->wall_seconds, 0.0);
}

TEST_F(ServerTest, AdmissionControlQueuesAndRejects) {
  VideoMetadata metadata = Metadata();
  std::vector<ViewerRequest> viewers = MakeViewers(6);
  // Viewer 3 wants more bandwidth than the whole uplink budget.
  viewers[3].session.network.bandwidth_bps = 500e6;

  ServerOptions options;
  options.max_concurrent_sessions = 2;
  options.bandwidth_budget_bps = 200e6;  // four 50 Mbps clients
  db_->storage()->ClearCache();
  StreamingServer server(db_->storage(), options);
  auto stats = server.Run(metadata, viewers);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_EQ(stats->sessions_offered, 6);
  EXPECT_EQ(stats->sessions_rejected, 1);
  EXPECT_EQ(stats->sessions_admitted, 5);
  EXPECT_EQ(stats->sessions_completed, 5);
  EXPECT_GT(stats->sessions_queued, 0);
  EXPECT_GT(stats->max_queue_depth, 0);
  EXPECT_LE(stats->max_active_sessions, 2);
  EXPECT_EQ(stats->sessions.size(), 5u);
  ASSERT_EQ(stats->admitted.size(), 5u);
  for (int viewer : stats->admitted) EXPECT_NE(viewer, 3);
}

TEST_F(ServerTest, FaultedServerRunCompletes) {
  // A server full of faulty links must finish every admitted session with
  // nonzero retry/stall accounting and zero crashes.
  VideoMetadata metadata = Metadata();
  std::vector<ViewerRequest> viewers = MakeViewers(6);
  for (ViewerRequest& viewer : viewers) {
    viewer.session.network.faults.episodes_per_minute = 120.0;
    viewer.session.network.faults.episode_seconds = 0.5;
    viewer.session.network.faults.timeout_seconds = 0.5;
    viewer.session.network.faults.seed = viewer.session.network.seed;
  }
  db_->storage()->ClearCache();
  StreamingServer server(db_->storage(), ServerOptions{});
  auto stats = server.Run(metadata, viewers);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->sessions_completed, 6);
  EXPECT_GT(stats->transfer_faults, 0);
  EXPECT_GT(stats->transfer_retries, 0);
}

TEST_F(ServerTest, AsyncPipelinePreservesSimulatedOutcome) {
  // The determinism contract of the async storage pipeline: served bytes,
  // QoE, admission, and fault accounting are byte-identical with prefetch
  // on or off and across I/O pool widths — speculation only warms the
  // cache. Fault injection is on so the invariance covers the retry path.
  VideoMetadata metadata = Metadata();
  auto make_viewers = [] {
    std::vector<ViewerRequest> viewers = MakeViewers(6);
    for (ViewerRequest& viewer : viewers) {
      viewer.session.network.faults.episodes_per_minute = 120.0;
      viewer.session.network.faults.episode_seconds = 0.5;
      viewer.session.network.faults.timeout_seconds = 0.5;
      viewer.session.network.faults.seed = viewer.session.network.seed;
    }
    return viewers;
  };
  auto run_config = [&](int io_threads, PrefetchMode mode) {
    // Fresh storage manager (cold cache) over the same committed store.
    StorageOptions storage_options;
    storage_options.env = env_;
    storage_options.root = "/vcdb";
    storage_options.io_threads = io_threads;
    storage_options.read_latency_seconds = 0.0002;
    auto storage = StorageManager::Open(storage_options);
    EXPECT_TRUE(storage.ok());
    ServerOptions server_options;
    server_options.prefetch = mode;
    StreamingServer server(storage->get(), server_options);
    auto stats = server.Run(metadata, make_viewers());
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return *stats;
  };

  ServerStats baseline = run_config(0, PrefetchMode::kOff);
  struct Config {
    int io_threads;
    PrefetchMode prefetch;
  };
  for (const Config& config :
       {Config{1, PrefetchMode::kOff}, Config{1, PrefetchMode::kPredict},
        Config{4, PrefetchMode::kPredict},
        Config{4, PrefetchMode::kPopularity}}) {
    ServerStats stats = run_config(config.io_threads, config.prefetch);
    EXPECT_EQ(stats.bytes_sent, baseline.bytes_sent);
    EXPECT_EQ(stats.wall_seconds, baseline.wall_seconds);
    EXPECT_EQ(stats.media_seconds, baseline.media_seconds);
    EXPECT_EQ(stats.stall_seconds, baseline.stall_seconds);
    EXPECT_EQ(stats.stall_events, baseline.stall_events);
    EXPECT_EQ(stats.transfer_faults, baseline.transfer_faults);
    EXPECT_EQ(stats.transfer_retries, baseline.transfer_retries);
    EXPECT_EQ(stats.segments_skipped, baseline.segments_skipped);
    EXPECT_EQ(stats.sessions_admitted, baseline.sessions_admitted);
    EXPECT_EQ(stats.sessions_queued, baseline.sessions_queued);
    EXPECT_EQ(stats.sessions_rejected, baseline.sessions_rejected);
    EXPECT_EQ(stats.sessions_completed, baseline.sessions_completed);
    ASSERT_EQ(stats.sessions.size(), baseline.sessions.size());
    for (size_t i = 0; i < stats.sessions.size(); ++i) {
      ExpectSameStats(stats.sessions[i], baseline.sessions[i]);
    }
    if (config.prefetch != PrefetchMode::kOff) {
      EXPECT_GT(stats.cache.prefetch_issued, 0u)
          << "prefetch mode must actually speculate";
      EXPECT_GT(stats.cache.prefetch_hits, 0u);
    } else {
      EXPECT_EQ(stats.cache.prefetch_issued, 0u);
    }
  }
}

TEST_F(ServerTest, ServerOptionsValidate) {
  ServerOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.max_concurrent_sessions = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServerOptions{};
  options.bandwidth_budget_bps = -1;
  EXPECT_FALSE(options.Validate().ok());
  options = ServerOptions{};
  options.popularity_coverage = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServerOptions{};
  options.prefetcher.max_queue = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ServerOptions{};
  options.prefetcher.max_inflight = -1;
  EXPECT_FALSE(options.Validate().ok());
}

// ------------------------------------------------------- cluster runs

TEST_F(ServerTest, ClusterOptionsValidate) {
  ClusterOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.nodes = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = ClusterOptions{};
  options.balance_slack = -1;
  EXPECT_FALSE(options.Validate().ok());
  options = ClusterOptions{};
  options.node.max_concurrent_sessions = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST_F(ServerTest, ShardedClusterPreservesSimulatedOutcome) {
  // The scale-out determinism contract: a fixed faulty cohort's served
  // bytes, QoE, admission, and fault accounting are byte-identical to the
  // single-node server across node counts, shard counts, and prefetch
  // settings. Placement and tiered caching only move host time and cache
  // hit rates. Admission is left ample (no per-node queueing), which is
  // the regime where node count is outcome-invariant.
  VideoMetadata metadata = Metadata();
  auto make_viewers = [] {
    std::vector<ViewerRequest> viewers = MakeViewers(6);
    for (ViewerRequest& viewer : viewers) {
      viewer.session.network.faults.episodes_per_minute = 120.0;
      viewer.session.network.faults.episode_seconds = 0.5;
      viewer.session.network.faults.timeout_seconds = 0.5;
      viewer.session.network.faults.seed = viewer.session.network.seed;
    }
    return viewers;
  };

  ServerStats baseline = [&] {
    StorageOptions storage_options;
    storage_options.env = env_;
    storage_options.root = "/vcdb";
    storage_options.read_latency_seconds = 0.0002;
    auto storage = StorageManager::Open(storage_options);
    EXPECT_TRUE(storage.ok());
    StreamingServer server(storage->get(), ServerOptions{});
    auto stats = server.Run(metadata, make_viewers());
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return *stats;
  }();
  EXPECT_GT(baseline.transfer_faults, 0);

  struct Config {
    int nodes;
    int shards;
    int io_threads;
    PrefetchMode prefetch;
  };
  std::vector<VideoMetadata> videos = {metadata};
  for (const Config& config :
       {Config{1, 1, 0, PrefetchMode::kOff},
        Config{2, 2, 0, PrefetchMode::kOff},
        Config{2, 4, 2, PrefetchMode::kPredict},
        Config{4, 2, 2, PrefetchMode::kPopularity}}) {
    SCOPED_TRACE("nodes=" + std::to_string(config.nodes) +
                 " shards=" + std::to_string(config.shards) +
                 " io_threads=" + std::to_string(config.io_threads));
    ShardedStoreOptions store_options;
    store_options.backend.env = env_;
    store_options.backend.root = "/vcdb";
    store_options.backend.io_threads = config.io_threads;
    store_options.backend.read_latency_seconds = 0.0002;
    store_options.shards = config.shards;
    auto store = ShardedStore::Open(store_options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();

    ClusterOptions options;
    options.nodes = config.nodes;
    options.node.prefetch = config.prefetch;
    ClusterServer cluster(store->get(), options);
    auto run = cluster.Run(videos, make_viewers());
    ASSERT_TRUE(run.ok()) << run.status().ToString();

    const ServerStats& stats = run->totals;
    EXPECT_EQ(stats.bytes_sent, baseline.bytes_sent);
    EXPECT_EQ(stats.wall_seconds, baseline.wall_seconds);
    EXPECT_EQ(stats.media_seconds, baseline.media_seconds);
    EXPECT_EQ(stats.stall_seconds, baseline.stall_seconds);
    EXPECT_EQ(stats.stall_events, baseline.stall_events);
    EXPECT_EQ(stats.transfer_faults, baseline.transfer_faults);
    EXPECT_EQ(stats.transfer_retries, baseline.transfer_retries);
    EXPECT_EQ(stats.segments_skipped, baseline.segments_skipped);
    EXPECT_EQ(stats.sessions_admitted, baseline.sessions_admitted);
    EXPECT_EQ(stats.sessions_queued, baseline.sessions_queued);
    EXPECT_EQ(stats.sessions_rejected, baseline.sessions_rejected);
    EXPECT_EQ(stats.sessions_completed, baseline.sessions_completed);
    ASSERT_EQ(stats.sessions.size(), baseline.sessions.size());
    for (size_t i = 0; i < stats.sessions.size(); ++i) {
      ExpectSameStats(stats.sessions[i], baseline.sessions[i]);
    }

    ASSERT_EQ(run->nodes.size(), static_cast<size_t>(config.nodes));
    int placed = 0;
    for (const ClusterNodeStats& node : run->nodes) {
      placed += node.sessions_placed;
      // Prefetch attribution never over-counts: tagged entries still
      // resident at end of run are neither hit nor wasted yet, so the
      // balance is an upper bound here (it closes exactly on Clear —
      // see the randomized invariant test in storage_test).
      EXPECT_GE(node.l1.prefetch_issued,
                node.l1.prefetch_hits + node.l1.prefetch_wasted);
    }
    EXPECT_EQ(placed, stats.sessions_admitted);
    if (config.prefetch != PrefetchMode::kOff) {
      EXPECT_GT(stats.cache.prefetch_issued, 0u)
          << "prefetch mode must actually speculate";
    } else {
      EXPECT_EQ(stats.cache.prefetch_issued, 0u);
    }
  }
}

TEST_F(ServerTest, ClusterNodesShareL2) {
  // Six viewers of one video on two nodes: locality packs the first node
  // until the balance guard spills the overflow onto the second, whose L1
  // misses are then served by the L2 the first node already warmed —
  // cross-node sharing without re-reading the backends.
  VideoMetadata metadata = Metadata();
  std::vector<VideoMetadata> videos = {metadata};

  ShardedStoreOptions store_options;
  store_options.backend.env = env_;
  store_options.backend.root = "/vcdb";
  store_options.shards = 2;
  auto store = ShardedStore::Open(store_options);
  ASSERT_TRUE(store.ok());

  ClusterOptions options;
  options.nodes = 2;
  ClusterServer cluster(store->get(), options);
  auto run = cluster.Run(videos, MakeViewers(6));
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  ASSERT_EQ(run->nodes.size(), 2u);
  EXPECT_GT(run->nodes[0].sessions_placed, 0);
  EXPECT_GT(run->nodes[1].sessions_placed, 0);
  EXPECT_EQ(run->nodes[0].sessions_placed + run->nodes[1].sessions_placed, 6);
  // The balance guard forced some viewers off the hot node.
  EXPECT_GT(run->spillovers(), 0);
  // Repeat viewers hit their own node's L1; the spilled node's cold L1
  // misses were absorbed by the shared L2.
  EXPECT_GT(run->totals.cache.hits, 0u);
  EXPECT_GT(run->l2.hits, 0u);
  EXPECT_EQ(run->totals.sessions_completed, 6);
}

TEST_F(ServerTest, ClusterPlacementCoSchedulesHotVideos) {
  // Two catalog entries (same committed clip — distinct videos as far as
  // placement and popularity are concerned) with alternating audiences:
  // the balancer gives each video its own node, and every follow-up viewer
  // lands next to its predecessors.
  VideoMetadata metadata = Metadata();
  std::vector<VideoMetadata> videos = {metadata, metadata};
  std::vector<ViewerRequest> viewers = MakeViewers(8);
  for (int i = 0; i < 8; ++i) viewers[i].video = i % 2;

  ShardedStoreOptions store_options;
  store_options.backend.env = env_;
  store_options.backend.root = "/vcdb";
  auto store = ShardedStore::Open(store_options);
  ASSERT_TRUE(store.ok());

  ClusterOptions options;
  options.nodes = 2;
  ClusterServer cluster(store->get(), options);
  auto run = cluster.Run(videos, viewers);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  ASSERT_EQ(run->nodes.size(), 2u);
  EXPECT_EQ(run->nodes[0].sessions_placed, 4);
  EXPECT_EQ(run->nodes[1].sessions_placed, 4);
  // All but each video's first viewer joined an active audience.
  EXPECT_EQ(run->nodes[0].locality_placements +
                run->nodes[1].locality_placements,
            6);
  // The locality-preferred node was never full, so nothing spilled.
  EXPECT_EQ(run->spillovers(), 0);
  for (const ClusterNodeStats& node : run->nodes) {
    EXPECT_GT(node.bytes_sent, 0u);
    EXPECT_EQ(node.max_active_sessions, 4);
  }
}

// --------------------------------------------------------- live serving

/// Same tile/ladder layout as the fixture's "venice" ingest: 1-second
/// segments so publish instants land on easy numbers.
IngestOptions LiveLayout() {
  IngestOptions ingest;
  ingest.tile_rows = 4;
  ingest.tile_cols = 4;
  ingest.frames_per_segment = 8;
  ingest.fps = 8.0;
  ingest.ladder = {{"high", 14}, {"medium", 28}, {"low", 42}};
  return ingest;
}

std::unique_ptr<SceneGenerator> LiveScene() {
  SceneOptions options;
  options.width = 128;
  options.height = 64;
  return NewVeniceScene(options);
}

TEST_F(ServerTest, LiveViewersJoinAtTheLiveEdge) {
  // A 4-segment feed (1 s segments, 0.2 s encode) publishes at 1.2, 2.2,
  // 3.2, 4.2. Viewers arriving mid-stream join at the live edge and stream
  // only the remaining segments; an early arrival is clamped to the first
  // publish and streams everything.
  auto scene = LiveScene();
  auto feed = LiveFeed::Create(db_, "live_edge_feed", *scene, 32,
                               LiveLayout(), LiveFeedOptions{});
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  EXPECT_EQ((*feed)->final_segment_count(), 4);
  EXPECT_EQ((*feed)->snapshot().segment_count(), 0);
  EXPECT_NEAR((*feed)->PublishTimeOf(0), 1.2, 1e-12);
  EXPECT_NEAR((*feed)->PublishTimeOf(3), 4.2, 1e-12);

  std::vector<ViewerRequest> viewers = MakeViewers(3);
  viewers[0].arrival_seconds = 0.0;  // before the first publish: clamped
  viewers[1].arrival_seconds = 2.5;  // two segments live
  viewers[2].arrival_seconds = 3.5;  // three segments live

  StreamingServer server(db_->storage(), ServerOptions{});
  auto stats = server.RunLive(feed->get(), viewers);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_TRUE((*feed)->complete());
  EXPECT_EQ(stats->live.total_segments, 4);
  EXPECT_EQ(stats->live.segments_published, 4);
  EXPECT_EQ(stats->live.degraded_segments, 0);
  EXPECT_NEAR(stats->live.max_lag_seconds, 0.2, 1e-12);
  EXPECT_NEAR(stats->live.final_lag_seconds, 0.2, 1e-12);

  EXPECT_EQ(stats->sessions_completed, 3);
  ASSERT_EQ(stats->sessions.size(), 3u);
  EXPECT_EQ(stats->sessions[0].segments, 4);
  EXPECT_EQ(stats->sessions[1].segments, 3);
  EXPECT_EQ(stats->sessions[2].segments, 2);

  // The caught-up feed is an ordinary archived video in the catalog...
  auto archived = db_->Describe("live_edge_feed");
  ASSERT_TRUE(archived.ok()) << archived.status().ToString();
  EXPECT_FALSE(archived->streaming);
  EXPECT_EQ(archived->segment_count(), 4);
  // ...and its manifest carries a complete, parseable live overlay.
  ManifestLive overlay;
  auto parsed =
      ParseManifest(Slice((*feed)->Manifest()), nullptr, &overlay);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(overlay.complete);
  ASSERT_EQ(overlay.publish_times_ms.size(), 4u);
  EXPECT_EQ(overlay.publish_times_ms[0], 1200);
  EXPECT_EQ(overlay.publish_times_ms[3], 4200);
  ASSERT_TRUE(db_->Drop("live_edge_feed").ok());
}

TEST_F(ServerTest, LiveFeedDegradesToStayUnderLagBudget) {
  // Fault injection: segment 1's encode takes 2.5 s instead of 0.3 s.
  // Without a budget the backlog drains slowly; with a 0.6 s glass-to-glass
  // budget the scheduler degrades the next segments to the fast preset and
  // catches up sooner. The schedule is precomputed, so this needs no
  // publishes at all.
  auto scene = LiveScene();
  LiveFeedOptions slow;
  slow.encode_seconds = 0.3;
  slow.encode_overrides[1] = 2.5;
  LiveFeedOptions degrading = slow;
  degrading.max_lag_seconds = 0.6;
  degrading.degraded_encode_seconds = 0.05;

  auto blocked =
      LiveFeed::Create(db_, "lag_blocked", *scene, 48, LiveLayout(), slow);
  auto bounded = LiveFeed::Create(db_, "lag_bounded", *scene, 48,
                                  LiveLayout(), degrading);
  ASSERT_TRUE(blocked.ok()) << blocked.status().ToString();
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();

  // The faulted segment itself never degrades (the override is its cost).
  EXPECT_FALSE((*bounded)->IsDegraded(1));
  EXPECT_NEAR((*bounded)->LagOf(1), 2.5, 1e-12);
  // The two segments behind the backlog degrade; once lag is back inside
  // the budget the encoder returns to the full-quality preset.
  EXPECT_TRUE((*bounded)->IsDegraded(2));
  EXPECT_TRUE((*bounded)->IsDegraded(3));
  EXPECT_FALSE((*bounded)->IsDegraded(4));
  EXPECT_FALSE((*bounded)->IsDegraded(5));
  EXPECT_NEAR((*blocked)->LagOf(2), 1.8, 1e-12);
  EXPECT_NEAR((*bounded)->LagOf(2), 1.55, 1e-12);
  EXPECT_NEAR((*bounded)->LagOf(3), 0.6, 1e-12);
  for (int segment : {2, 3, 4}) {
    EXPECT_LT((*bounded)->LagOf(segment), (*blocked)->LagOf(segment))
        << "segment " << segment;
  }

  // Served run over the faulted feed: the early viewer stalls at the live
  // edge while segment 1 encodes, and the ingest-side stats surface the
  // degrade decisions and the worst-case lag.
  LiveFeedOptions run_options = degrading;
  auto feed = LiveFeed::Create(db_, "lag_run", *scene, 32, LiveLayout(),
                               run_options);
  ASSERT_TRUE(feed.ok()) << feed.status().ToString();
  std::vector<ViewerRequest> viewers = MakeViewers(1);
  viewers[0].arrival_seconds = 0.0;
  StreamingServer server(db_->storage(), ServerOptions{});
  auto stats = server.RunLive(feed->get(), viewers);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->live.segments_published, 4);
  EXPECT_EQ(stats->live.degraded_segments, 2);
  EXPECT_NEAR(stats->live.max_lag_seconds, 2.5, 1e-12);
  ASSERT_EQ(stats->sessions.size(), 1u);
  EXPECT_GE(stats->sessions[0].stall_events, 1);
  EXPECT_GT(stats->sessions[0].stall_seconds, 1.0);
  ASSERT_TRUE(db_->Drop("lag_run").ok());
}

TEST_F(ServerTest, LiveOutcomeInvariantAcrossRerunsNodesAndPrefetch) {
  // The live determinism contract: the same frame-arrival schedule and
  // viewer cohort produce byte-identical served output and ingest stats
  // across reruns (fresh feeds), node counts, shard counts, io_threads,
  // and prefetch modes. Includes a fault + degrade so the invariance
  // covers the budget path too.
  auto scene = LiveScene();
  LiveFeedOptions feed_options;
  feed_options.encode_seconds = 0.25;
  feed_options.encode_overrides[2] = 1.5;
  feed_options.max_lag_seconds = 0.5;
  feed_options.degraded_encode_seconds = 0.1;

  auto make_viewers = [] {
    std::vector<ViewerRequest> viewers = MakeViewers(4);
    viewers[0].arrival_seconds = 0.0;
    viewers[1].arrival_seconds = 1.4;
    viewers[2].arrival_seconds = 2.6;
    viewers[3].arrival_seconds = 3.0;
    return viewers;
  };

  int run_id = 0;
  std::vector<std::string> feed_names;
  auto make_feed = [&]() {
    std::string name = "live_det_" + std::to_string(run_id++);
    feed_names.push_back(name);
    auto feed = LiveFeed::Create(db_, name, *scene, 32, LiveLayout(),
                                 feed_options);
    EXPECT_TRUE(feed.ok()) << feed.status().ToString();
    return std::move(*feed);
  };
  auto expect_same_run = [&](const ServerStats& stats,
                             const ServerStats& baseline) {
    EXPECT_EQ(stats.bytes_sent, baseline.bytes_sent);
    EXPECT_EQ(stats.wall_seconds, baseline.wall_seconds);
    EXPECT_EQ(stats.media_seconds, baseline.media_seconds);
    EXPECT_EQ(stats.stall_seconds, baseline.stall_seconds);
    EXPECT_EQ(stats.stall_events, baseline.stall_events);
    EXPECT_EQ(stats.sessions_completed, baseline.sessions_completed);
    EXPECT_EQ(stats.live.segments_published,
              baseline.live.segments_published);
    EXPECT_EQ(stats.live.degraded_segments,
              baseline.live.degraded_segments);
    EXPECT_EQ(stats.live.max_lag_seconds, baseline.live.max_lag_seconds);
    EXPECT_EQ(stats.live.mean_lag_seconds, baseline.live.mean_lag_seconds);
    ASSERT_EQ(stats.sessions.size(), baseline.sessions.size());
    for (size_t i = 0; i < stats.sessions.size(); ++i) {
      ExpectSameStats(stats.sessions[i], baseline.sessions[i]);
    }
  };

  auto run_single = [&]() {
    StorageOptions storage_options;
    storage_options.env = env_;
    storage_options.root = "/vcdb";
    storage_options.read_latency_seconds = 0.0002;
    auto storage = StorageManager::Open(storage_options);
    EXPECT_TRUE(storage.ok());
    auto feed = make_feed();
    StreamingServer server(storage->get(), ServerOptions{});
    auto stats = server.RunLive(feed.get(), make_viewers());
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return *stats;
  };

  ServerStats baseline = run_single();
  EXPECT_EQ(baseline.live.degraded_segments, 1);
  EXPECT_GT(baseline.stall_seconds, 0.0);

  // Rerun on a fresh feed: identical serving stats, and the two archived
  // catalogs hold byte-identical cells.
  ServerStats rerun = run_single();
  expect_same_run(rerun, baseline);
  auto first = db_->Describe(feed_names[0]);
  auto second = db_->Describe(feed_names[1]);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->cells.size(), second->cells.size());
  for (size_t i = 0; i < first->cells.size(); ++i) {
    ASSERT_EQ(first->cells[i].byte_size, second->cells[i].byte_size);
    ASSERT_EQ(first->cells[i].crc32, second->cells[i].crc32);
  }

  struct Config {
    int nodes;
    int shards;
    int io_threads;
    PrefetchMode prefetch;
  };
  for (const Config& config :
       {Config{1, 1, 0, PrefetchMode::kOff},
        Config{3, 2, 2, PrefetchMode::kPredict},
        Config{2, 1, 2, PrefetchMode::kPopularity}}) {
    SCOPED_TRACE("nodes=" + std::to_string(config.nodes) +
                 " shards=" + std::to_string(config.shards) +
                 " io_threads=" + std::to_string(config.io_threads));
    ShardedStoreOptions store_options;
    store_options.backend.env = env_;
    store_options.backend.root = "/vcdb";
    store_options.backend.io_threads = config.io_threads;
    store_options.backend.read_latency_seconds = 0.0002;
    store_options.shards = config.shards;
    auto store = ShardedStore::Open(store_options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();

    ClusterOptions options;
    options.nodes = config.nodes;
    options.node.prefetch = config.prefetch;
    ClusterServer cluster(store->get(), options);
    auto feed = make_feed();
    auto run = cluster.RunLive(feed.get(), make_viewers());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    expect_same_run(run->totals, baseline);
  }

  for (const std::string& name : feed_names) {
    ASSERT_TRUE(db_->Drop(name).ok());
  }
}

// ------------------------------------------------------ live popularity

TEST_F(ServerTest, PopularitySinkFeedsSharedModel) {
  // A session configured with a popularity sink records its gaze live and
  // bumps the viewer count when it finishes.
  VideoMetadata metadata = Metadata();
  PopularityModel model(metadata.tile_grid(),
                        metadata.segment_duration_seconds(),
                        metadata.segment_count());
  SessionOptions options = BaseSession();
  options.popularity_sink = &model;

  auto stats =
      SimulateSession(db_->storage(), metadata, MakeTrace(0.3), options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(model.viewer_count(), 1);
  // The trace holds pitch at the equator, so some equatorial tile must
  // have accumulated gaze mass in the first segment.
  EXPECT_FALSE(model.PopularTiles(0, 0.5).empty());
}

// ------------------------------------------------- Serving fast-path PRs

TEST_F(ServerTest, PlanCacheToggleKeepsOutcomeByteIdentical) {
  // The shared plan cache is a pure memoizer: turning it off changes host
  // time and plan stats, never a single served byte or QoE field.
  VideoMetadata metadata = Metadata();
  StorageOptions storage_options;
  storage_options.env = env_;
  storage_options.root = "/vcdb";
  auto storage = StorageManager::Open(storage_options);
  ASSERT_TRUE(storage.ok());

  ServerOptions with_cache;
  ASSERT_TRUE(with_cache.share_plans) << "must default on";
  ServerOptions without_cache;
  without_cache.share_plans = false;

  StreamingServer cached_server(storage->get(), with_cache);
  auto cached = cached_server.Run(metadata, MakeViewers(6));
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  StreamingServer plain_server(storage->get(), without_cache);
  auto plain = plain_server.Run(metadata, MakeViewers(6));
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  EXPECT_EQ(cached->bytes_sent, plain->bytes_sent);
  EXPECT_EQ(cached->wall_seconds, plain->wall_seconds);
  EXPECT_EQ(cached->stall_seconds, plain->stall_seconds);
  ASSERT_EQ(cached->sessions.size(), plain->sessions.size());
  for (size_t i = 0; i < cached->sessions.size(); ++i) {
    ExpectSameStats(cached->sessions[i], plain->sessions[i]);
  }

  // The cohort's sessions share at least the view-independent work, so the
  // cache must both be exercised and actually hit.
  EXPECT_GT(cached->plan.hits + cached->plan.misses, 0u);
  EXPECT_EQ(plain->plan.hits + plain->plan.misses, 0u);
}

TEST_F(ServerTest, IdenticalViewersShareEveryPlanAfterTheFirst) {
  // Exact replicas (same trace, same seed) are the plan cache's best case:
  // every session after the first plans entirely from cache. This is the
  // regime the 10k-viewer benchmark leans on.
  VideoMetadata metadata = Metadata();
  StorageOptions storage_options;
  storage_options.env = env_;
  storage_options.root = "/vcdb";
  auto storage = StorageManager::Open(storage_options);
  ASSERT_TRUE(storage.ok());

  std::vector<ViewerRequest> viewers;
  for (int i = 0; i < 5; ++i) {
    ViewerRequest viewer;
    viewer.trace = MakeTrace(0.3);
    viewer.session = BaseSession();
    viewer.session.network.seed = 7;  // identical network draws
    viewer.arrival_seconds = 0.0;     // identical pacing
    viewers.push_back(std::move(viewer));
  }

  StreamingServer server(storage->get(), ServerOptions{});
  auto stats = server.Run(metadata, viewers);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->sessions.size(), 5u);
  for (const SessionStats& session : stats->sessions) {
    ExpectSameStats(session, stats->sessions[0]);
  }
  // One cohort member misses per (segment, plan input); the other four hit.
  EXPECT_GE(stats->plan.HitRate(), 0.75);
  EXPECT_GE(stats->plan.hits,
            4 * static_cast<uint64_t>(metadata.segment_count()));
}

TEST_F(ServerTest, L2AdmissionToggleKeepsClusterOutcomeByteIdentical) {
  // Admit-on-second-touch only decides what the shared L2 *retains*; every
  // read still delivers the same bytes, so cluster outcomes are invariant.
  VideoMetadata metadata = Metadata();
  std::vector<VideoMetadata> videos = {metadata};

  auto run_with = [&](bool second_touch) {
    ShardedStoreOptions store_options;
    store_options.backend.env = env_;
    store_options.backend.root = "/vcdb";
    store_options.shards = 2;
    store_options.l2_admit_on_second_touch = second_touch;
    auto store = ShardedStore::Open(store_options);
    EXPECT_TRUE(store.ok());
    ClusterOptions options;
    options.nodes = 2;
    ClusterServer cluster(store->get(), options);
    auto run = cluster.Run(videos, MakeViewers(6));
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return *run;
  };

  ClusterStats filtered = run_with(true);
  ClusterStats open = run_with(false);

  EXPECT_EQ(filtered.totals.bytes_sent, open.totals.bytes_sent);
  EXPECT_EQ(filtered.totals.stall_seconds, open.totals.stall_seconds);
  ASSERT_EQ(filtered.totals.sessions.size(), open.totals.sessions.size());
  for (size_t i = 0; i < filtered.totals.sessions.size(); ++i) {
    ExpectSameStats(filtered.totals.sessions[i], open.totals.sessions[i]);
  }
  // The policy visibly filtered first touches out of the L2...
  EXPECT_GT(filtered.l2.admission_rejects, 0u);
  EXPECT_EQ(open.l2.admission_rejects, 0u);
  // ...and each rejected first touch showed up as an extra L2 miss.
  EXPECT_GE(filtered.l2.misses, open.l2.misses);
}

TEST_F(ServerTest, PrefetchChurnCountersSurfaceInServerStats) {
  // Per-session hints repeat across a cohort streaming one video; the
  // dedupe TTL suppresses the repeats instead of queueing and cancelling
  // them. The suppression is visible in stats and changes no outcome.
  VideoMetadata metadata = Metadata();
  StorageOptions storage_options;
  storage_options.env = env_;
  storage_options.root = "/vcdb";
  storage_options.io_threads = 2;
  storage_options.read_latency_seconds = 0.0002;
  auto storage = StorageManager::Open(storage_options);
  ASSERT_TRUE(storage.ok());

  ServerOptions options;
  options.prefetch = PrefetchMode::kPredict;
  StreamingServer server(storage->get(), options);
  auto stats = server.Run(metadata, MakeViewers(8));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->prefetch.enqueued, 0u);
  EXPECT_GT(stats->prefetch.deduped, 0u)
      << "a one-video cohort must generate overlapping hints";
  EXPECT_LE(stats->prefetch.CancellationRatio(), 1.0);

  // Churn control must not perturb the simulated outcome: rerun without
  // any prefetching and demand byte-identical sessions.
  StorageOptions cold_options = storage_options;
  cold_options.io_threads = 0;
  auto cold_storage = StorageManager::Open(cold_options);
  ASSERT_TRUE(cold_storage.ok());
  StreamingServer cold_server(cold_storage->get(), ServerOptions{});
  auto cold = cold_server.Run(metadata, MakeViewers(8));
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(stats->bytes_sent, cold->bytes_sent);
  ASSERT_EQ(stats->sessions.size(), cold->sessions.size());
  for (size_t i = 0; i < stats->sessions.size(); ++i) {
    ExpectSameStats(stats->sessions[i], cold->sessions[i]);
  }
}

}  // namespace
}  // namespace vc
