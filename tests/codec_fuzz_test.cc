#include <gtest/gtest.h>

#include <vector>

#include "codec/bitstream.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "common/random.h"
#include "image/scene.h"

// Deterministic fuzzing of the bitstream parser and tile decoder: valid
// streams are truncated at every interesting length and peppered with seeded
// bit flips, and every mutant is pushed through EncodedVideo::Parse and full
// tile decoding. The contract under test is totality — every input either
// decodes or returns a clean error Status. Crashes, hangs, and out-of-bounds
// access (the ASan/UBSan CI leg runs this suite) are the failures; which
// mutants happen to decode is irrelevant.

namespace vc {
namespace {

std::vector<uint8_t> EncodeFixture(EntropyProfile profile, int tile_rows,
                                   int tile_cols) {
  SceneOptions scene_options;
  scene_options.width = 64;
  scene_options.height = 32;
  auto scene = NewVeniceScene(scene_options);
  auto frames = RenderScene(*scene, 4);

  EncoderOptions options;
  options.width = 64;
  options.height = 32;
  options.gop_length = 4;
  options.qp = 30;
  options.tile_rows = tile_rows;
  options.tile_cols = tile_cols;
  options.entropy_profile = profile;
  auto video = EncodeVideo(frames, options);
  EXPECT_TRUE(video.ok());
  return video->Serialize();
}

/// Parses and, when parsing succeeds, fully decodes every frame. Any return
/// path is acceptable; the assertion is that we get here at all (no crash)
/// and that failure surfaces as a Status rather than garbage memory.
void DriveDecoder(const std::vector<uint8_t>& bytes) {
  auto video = EncodedVideo::Parse(Slice(bytes));
  if (!video.ok()) return;
  auto decoder = Decoder::Create(video->header);
  if (!decoder.ok()) return;
  for (const EncodedFrame& frame : video->frames) {
    auto decoded = (*decoder)->Decode(Slice(frame.payload));
    if (!decoded.ok()) return;  // later frames reference this one; stop
  }
}

class FuzzTest : public ::testing::TestWithParam<EntropyProfile> {};

TEST_P(FuzzTest, TruncatedStreamsFailCleanly) {
  auto bytes = EncodeFixture(GetParam(), 2, 2);
  ASSERT_GT(bytes.size(), 64u);
  // Every length in the header region, then a deterministic sample of the
  // payload region (every length would be quadratic in stream size).
  for (size_t keep = 0; keep < 64; ++keep) {
    DriveDecoder(std::vector<uint8_t>(bytes.begin(), bytes.begin() + keep));
  }
  Random rng(20260808);
  for (int i = 0; i < 200; ++i) {
    size_t keep = 64 + rng.Uniform(static_cast<uint32_t>(bytes.size() - 64));
    DriveDecoder(std::vector<uint8_t>(bytes.begin(), bytes.begin() + keep));
  }
}

TEST_P(FuzzTest, BitFlippedStreamsFailCleanly) {
  auto bytes = EncodeFixture(GetParam(), 2, 2);
  Random rng(971);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> mutant = bytes;
    // 1–8 flips; single flips probe every layer, bursts corrupt deeper.
    int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < flips; ++i) {
      size_t bit = rng.Uniform(static_cast<uint32_t>(mutant.size() * 8));
      mutant[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    DriveDecoder(mutant);
  }
}

TEST_P(FuzzTest, MutatedTilePayloadsFailCleanly) {
  // Mutations aimed past the container framing, straight at tile payloads:
  // parse the valid stream once, corrupt frame payload bytes after the tile
  // offset table, and decode single tiles.
  auto bytes = EncodeFixture(GetParam(), 2, 2);
  auto video = EncodedVideo::Parse(Slice(bytes));
  ASSERT_TRUE(video.ok());
  Random rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    EncodedVideo mutant = *video;
    auto& payload = mutant.frames[rng.Uniform(
        static_cast<uint32_t>(mutant.frames.size()))].payload;
    const size_t data_start = 2 + 4 * 4;  // type, qp, 4 tile offsets
    if (payload.size() <= data_start) continue;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < edits; ++i) {
      size_t pos =
          data_start +
          rng.Uniform(static_cast<uint32_t>(payload.size() - data_start));
      payload[pos] = static_cast<uint8_t>(rng.Uniform(256));
    }
    auto decoder = Decoder::Create(mutant.header);
    ASSERT_TRUE(decoder.ok());
    TileGrid grid = mutant.header.tile_grid();
    for (const EncodedFrame& frame : mutant.frames) {
      auto decoded = (*decoder)->DecodeTiles(
          Slice(frame.payload),
          {grid.TileAt(static_cast<int>(rng.Uniform(4)))});
      if (!decoded.ok()) break;
    }
  }
}

TEST_P(FuzzTest, ZeroAndPatternFilledPayloadsFailCleanly) {
  auto bytes = EncodeFixture(GetParam(), 1, 1);
  for (uint8_t fill : {0x00, 0xff, 0xaa, 0x41}) {
    std::vector<uint8_t> mutant = bytes;
    // Keep the header so decoding reaches the entropy layer.
    for (size_t i = SequenceHeader::kSerializedSize + 4; i < mutant.size();
         ++i) {
      mutant[i] = fill;
    }
    DriveDecoder(mutant);
  }
}

INSTANTIATE_TEST_SUITE_P(BothProfiles, FuzzTest,
                         ::testing::Values(EntropyProfile::kExpGolomb,
                                           EntropyProfile::kHuffman),
                         [](const ::testing::TestParamInfo<EntropyProfile>&
                                info) {
                           return info.param == EntropyProfile::kHuffman
                                      ? "huffman"
                                      : "expgolomb";
                         });

}  // namespace
}  // namespace vc
