#include <gtest/gtest.h>

#include "container/box.h"
#include "container/boxes.h"

namespace vc {
namespace {

TEST(BoxTest, FourCcHelpers) {
  uint32_t trak = MakeFourCc("trak");
  EXPECT_EQ(FourCcToString(trak), "trak");
  EXPECT_TRUE(IsContainerBoxType(kBoxVcmf));
  EXPECT_TRUE(IsContainerBoxType(kBoxTrak));
  EXPECT_FALSE(IsContainerBoxType(kBoxGidx));
}

TEST(BoxTest, LeafRoundTrip) {
  Box leaf(kBoxName, {1, 2, 3, 4, 5});
  auto bytes = SerializeBoxes({leaf});
  EXPECT_EQ(bytes.size(), 8u + 5u);
  auto parsed = ParseBoxes(Slice(bytes));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].type, kBoxName);
  EXPECT_EQ((*parsed)[0].data, leaf.data);
}

TEST(BoxTest, NestedRoundTrip) {
  Box root(kBoxVcmf);
  Box track(kBoxTrak);
  track.children.push_back(Box(kBoxGidx, {9, 9}));
  root.children.push_back(std::move(track));
  root.children.push_back(Box(kBoxName, {'h', 'i'}));

  auto bytes = SerializeBoxes({root});
  auto parsed = ParseBoxes(Slice(bytes));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  const Box& r = (*parsed)[0];
  ASSERT_EQ(r.children.size(), 2u);
  auto trak = r.FindChild(kBoxTrak);
  ASSERT_TRUE(trak.ok());
  ASSERT_EQ((*trak)->children.size(), 1u);
  EXPECT_EQ((*trak)->children[0].data, (std::vector<uint8_t>{9, 9}));
  EXPECT_TRUE(r.FindChild(kBoxMdat).status().IsNotFound());
}

TEST(BoxTest, FindChildrenReturnsAll) {
  Box root(kBoxVcmf);
  root.children.push_back(Box(kBoxTrak));
  root.children.push_back(Box(kBoxTrak));
  root.children.push_back(Box(kBoxName));
  EXPECT_EQ(root.FindChildren(kBoxTrak).size(), 2u);
}

TEST(BoxTest, TruncatedInputRejected) {
  Box leaf(kBoxGidx, std::vector<uint8_t>(20, 1));
  auto bytes = SerializeBoxes({leaf});
  bytes.resize(bytes.size() - 5);
  EXPECT_TRUE(ParseBoxes(Slice(bytes)).status().IsCorruption());
  bytes.resize(6);
  EXPECT_TRUE(ParseBoxes(Slice(bytes)).status().IsCorruption());
}

TEST(BoxTest, OverrunningChildRejected) {
  // Craft a box claiming a payload larger than the buffer.
  std::vector<uint8_t> bytes = {0x00, 0x00, 0x01, 0x00,  // size 256
                                'n',  'a',  'm',  'e',   // type
                                1,    2,    3};
  EXPECT_TRUE(ParseBoxes(Slice(bytes)).status().IsCorruption());
}

TEST(TrackHeaderTest, RoundTrip) {
  TrackHeader header;
  header.track_id = 3;
  header.width = 512;
  header.height = 256;
  header.fps_times_100 = 2400;
  header.frame_count = 2700;
  auto parsed = TrackHeader::FromBox(header.ToBox());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->track_id, 3u);
  EXPECT_EQ(parsed->width, 512);
  EXPECT_EQ(parsed->fps_times_100, 2400);
  EXPECT_EQ(parsed->frame_count, 2700u);
  EXPECT_EQ(parsed->codec, MakeFourCc("vcc1"));
}

TEST(GopIndexTest, RoundTripAndLookup) {
  GopIndex index;
  index.entries = {{0, 30, 16, 1000}, {30, 30, 1016, 900}, {60, 15, 1916, 400}};
  auto parsed = GopIndex::FromBox(index.ToBox());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->entries.size(), 3u);

  auto hit = parsed->Lookup(45);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->first_frame, 30u);
  EXPECT_EQ(hit->byte_offset, 1016u);

  EXPECT_TRUE(parsed->Lookup(0).ok());
  EXPECT_TRUE(parsed->Lookup(74).ok());
  EXPECT_TRUE(parsed->Lookup(75).status().IsNotFound());
}

TEST(SphericalMetaTest, RoundTripAndValidation) {
  SphericalMeta meta;
  meta.stereo = StereoMode::kStereoTopBottom;
  auto parsed = SphericalMeta::FromBox(meta.ToBox());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->stereo, StereoMode::kStereoTopBottom);
  EXPECT_EQ(parsed->projection, Projection::kEquirectangular);

  Box bad(kBoxSv3d, {9, 9});
  EXPECT_TRUE(SphericalMeta::FromBox(bad).status().IsNotSupported());
}

TEST(QualityLadderBoxTest, RoundTrip) {
  QualityLadder ladder = {{"high", 12}, {"medium", 26}, {"low", 40}};
  auto parsed = QualityLadderFromBox(QualityLadderToBox(ladder));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ladder);
}

TEST(SegmentIndexBoxTest, RoundTrip) {
  std::vector<SegmentInfo> segments = {{0, 30}, {30, 30}, {60, 7}};
  auto parsed = SegmentIndexFromBox(SegmentIndexToBox(segments));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[2].start_frame, 60u);
  EXPECT_EQ((*parsed)[2].frame_count, 7u);
}

TEST(CellIndexBoxTest, RoundTrip) {
  std::vector<CellInfo> cells = {{1234, 0xdeadbeef}, {0, 0}, {1ull << 40, 7}};
  auto parsed = CellIndexFromBox(CellIndexToBox(cells));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].byte_size, 1234u);
  EXPECT_EQ((*parsed)[0].crc32, 0xdeadbeefu);
  EXPECT_EQ((*parsed)[2].byte_size, 1ull << 40);
}

TEST(StringBoxTest, RoundTripIncludingEmpty) {
  auto parsed = StringFromBox(StringToBox(kBoxName, "venice"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, "venice");
  parsed = StringFromBox(StringToBox(kBoxDref, ""));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, "");
}

TEST(TypedBoxTest, WrongTypeRejected) {
  Box name = StringToBox(kBoxName, "x");
  EXPECT_FALSE(TrackHeader::FromBox(name).ok());
  EXPECT_FALSE(GopIndex::FromBox(name).ok());
  EXPECT_FALSE(QualityLadderFromBox(name).ok());
}

TEST(TypedBoxTest, TruncatedPayloadRejected) {
  TrackHeader header;
  Box box = header.ToBox();
  box.data.resize(box.data.size() - 2);
  EXPECT_TRUE(TrackHeader::FromBox(box).status().IsCorruption());
}

}  // namespace
}  // namespace vc
