// Failure-injection and property-based fuzz tests: a DBMS must treat every
// byte it reads from disk or the network as hostile. Nothing in here may
// crash, hang, or corrupt memory — adversarial inputs must surface as
// Status errors (or, for bit flips that happen to decode, as garbage
// pixels, never UB).

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "common/env.h"
#include "common/random.h"
#include "container/box.h"
#include "image/scene.h"
#include "storage/metadata.h"
#include "storage/storage_manager.h"
#include "streaming/manifest.h"

namespace vc {
namespace {

std::vector<Frame> SmallFrames(int count) {
  SceneOptions options;
  options.width = 64;
  options.height = 32;
  auto scene = NewVeniceScene(options);
  return RenderScene(*scene, count);
}

EncoderOptions SmallOptions() {
  EncoderOptions options;
  options.width = 64;
  options.height = 32;
  options.gop_length = 4;
  options.tile_rows = 2;
  options.tile_cols = 2;
  return options;
}

// ----------------------------------------------- Decoder vs hostile bytes

class DecoderFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderFuzzTest, RandomPayloadNeverCrashes) {
  Random rng(GetParam());
  auto decoder = *Decoder::Create(SmallOptions().ToHeader());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(rng.Uniform(300) + 1);
    for (auto& byte : junk) byte = static_cast<uint8_t>(rng.Next());
    // Must not crash; almost always errors, occasionally decodes garbage.
    auto result = decoder->Decode(Slice(junk));
    (void)result;
  }
}

TEST_P(DecoderFuzzTest, BitFlippedPayloadNeverCrashes) {
  Random rng(GetParam() ^ 0xF11Full);
  auto frames = SmallFrames(6);
  auto video = *EncodeVideo(frames, SmallOptions());
  auto decoder = *Decoder::Create(video.header);
  for (int trial = 0; trial < 100; ++trial) {
    auto payload = video.frames[trial % video.frames.size()].payload;
    // Flip 1-4 random bits.
    int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < flips; ++i) {
      size_t bit = rng.Uniform(payload.size() * 8);
      payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    auto result = decoder->Decode(Slice(payload));
    (void)result;
  }
}

TEST_P(DecoderFuzzTest, TruncatedStreamsFailCleanly) {
  Random rng(GetParam() ^ 0x7777ull);
  auto video = *EncodeVideo(SmallFrames(6), SmallOptions());
  auto bytes = video.Serialize();
  for (int trial = 0; trial < 50; ++trial) {
    size_t keep = rng.Uniform(bytes.size());
    auto truncated = bytes;
    truncated.resize(keep);
    auto parsed = EncodedVideo::Parse(Slice(truncated));
    if (parsed.ok()) {
      // A truncation exactly at a frame boundary yields a valid shorter
      // stream; anything else must error.
      EXPECT_LE(parsed->frames.size(), video.frames.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ----------------------------------------------- Container vs hostile bytes

class ContainerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContainerFuzzTest, RandomBytesNeverCrashParser) {
  Random rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> junk(rng.Uniform(200));
    for (auto& byte : junk) byte = static_cast<uint8_t>(rng.Next());
    auto boxes = ParseBoxes(Slice(junk));
    (void)boxes;
  }
}

TEST_P(ContainerFuzzTest, MutatedMetadataNeverCrashesParser) {
  Random rng(GetParam() ^ 0x4d455441ull);
  VideoMetadata m;
  m.name = "fuzz";
  m.version = 1;
  m.width = 64;
  m.height = 32;
  m.frames_per_segment = 4;
  m.ladder = {{"only", 30}};
  m.segments = {{0, 4}};
  m.cells = {CellInfo{10, 1}};
  auto bytes = m.Serialize();
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = bytes;
    int mutations = 1 + static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < mutations; ++i) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<uint8_t>(rng.Next());
    }
    auto parsed = VideoMetadata::Parse(Slice(mutated));
    (void)parsed;  // error or (rarely) a still-valid metadata — never UB
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainerFuzzTest, ::testing::Values(7, 8, 9));

// ----------------------------------------------------- Storage corruption

TEST(StorageRobustnessTest, CorruptMetadataFileSurfacesError) {
  auto env = NewMemEnv();
  StorageOptions options;
  options.env = env.get();
  options.root = "/s";
  auto store = *StorageManager::Open(options);

  VideoMetadata layout;
  layout.name = "v";
  layout.width = 64;
  layout.height = 32;
  layout.frames_per_segment = 4;
  layout.ladder = {{"only", 30}};
  auto writer = *store->NewVideoWriter(layout);
  std::vector<std::vector<uint8_t>> cells = {std::vector<uint8_t>(10, 1)};
  ASSERT_TRUE(writer->AddSegment(4, cells).ok());
  ASSERT_TRUE(writer->Commit().ok());

  // Overwrite the metadata file with garbage: reads error, no crash.
  ASSERT_TRUE(
      env->WriteFile("/s/v/metadata.v1.vcmf", Slice("garbage", 7)).ok());
  EXPECT_FALSE(store->GetVideo("v").ok());
  EXPECT_FALSE(store->GetVideoVersion("v", 1).ok());
}

TEST(StorageRobustnessTest, EveryCorruptedCellByteIsDetected) {
  // Property: flipping any single byte of a stored cell fails the checksum.
  auto env = NewMemEnv();
  StorageOptions options;
  options.env = env.get();
  options.root = "/s";
  auto store = *StorageManager::Open(options);

  VideoMetadata layout;
  layout.name = "v";
  layout.width = 64;
  layout.height = 32;
  layout.frames_per_segment = 4;
  layout.ladder = {{"only", 30}};
  auto writer = *store->NewVideoWriter(layout);
  std::vector<uint8_t> payload(64);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(writer->AddSegment(4, {payload}).ok());
  ASSERT_TRUE(writer->Commit().ok());
  auto metadata = *store->GetVideo("v");
  std::string path = "/s/v/v1/" + metadata.CellFileName(0, 0, 0);

  for (size_t i = 0; i < payload.size(); ++i) {
    auto corrupted = payload;
    corrupted[i] ^= 0x01;
    ASSERT_TRUE(env->WriteFile(path, Slice(corrupted)).ok());
    // Fresh open per mutation so the clean copy is not cached.
    auto fresh = *StorageManager::Open(options);
    EXPECT_TRUE(fresh->ReadCell(metadata, 0, 0, 0).status().IsCorruption())
        << "byte " << i << " flip undetected";
  }
}

// ------------------------------------------------------ Manifest vs noise

class ManifestFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ManifestFuzzTest, RandomTextNeverCrashes) {
  Random rng(GetParam());
  const char charset[] = "abcdefgh 0123456789\nVCMPDcellquality-.";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    size_t length = rng.Uniform(400);
    for (size_t i = 0; i < length; ++i) {
      text.push_back(charset[rng.Uniform(sizeof(charset) - 1)]);
    }
    auto parsed = ParseManifest(Slice(text));
    (void)parsed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManifestFuzzTest, ::testing::Values(11, 12));

// -------------------------------------------- Geometry property sweeps

struct GridCase {
  int rows, cols;
};

class TileGridPropertyTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(TileGridPropertyTest, RandomOrientationInvariants) {
  TileGrid grid(GetParam().rows, GetParam().cols);
  Random rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    Orientation o{rng.UniformDouble(-10, 10), rng.UniformDouble(-2, 5)};
    TileId tile = grid.TileFor(o);
    ASSERT_GE(tile.row, 0);
    ASSERT_LT(tile.row, grid.rows());
    ASSERT_GE(tile.col, 0);
    ASSERT_LT(tile.col, grid.cols());
    // The gaze tile is always part of the covered viewport.
    auto covered = grid.TilesInViewport(o, DegToRad(90), DegToRad(75));
    ASSERT_FALSE(covered.empty());
    bool found = false;
    for (const TileId& t : covered) {
      if (t == tile) found = true;
      ASSERT_GE(t.row, 0);
      ASSERT_LT(t.row, grid.rows());
    }
    ASSERT_TRUE(found) << "gaze tile missing from viewport cover";
  }
}

TEST_P(TileGridPropertyTest, PixelRectsPartitionRandomFrames) {
  TileGrid grid(GetParam().rows, GetParam().cols);
  Random rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    int width = 16 * (grid.cols() + static_cast<int>(rng.Uniform(20)));
    int height = 16 * (grid.rows() + static_cast<int>(rng.Uniform(20)));
    long long area = 0;
    for (int i = 0; i < grid.tile_count(); ++i) {
      auto rect = grid.PixelRectOf(grid.TileAt(i), width, height, 16);
      ASSERT_TRUE(rect.ok());
      area += static_cast<long long>(rect->width) * rect->height;
    }
    ASSERT_EQ(area, static_cast<long long>(width) * height);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, TileGridPropertyTest,
    ::testing::Values(GridCase{1, 1}, GridCase{2, 2}, GridCase{4, 4},
                      GridCase{4, 8}, GridCase{6, 8}, GridCase{8, 8}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols);
    });

// --------------------------------------------- Codec encode/decode parity

TEST(CodecRobustnessTest, NoiseFramesRoundTripBitExactly) {
  // Worst-case content (white noise) still must keep encoder and decoder
  // reconstructions identical — the invariant that prevents drift.
  Random rng(123);
  EncoderOptions options = SmallOptions();
  auto encoder = *Encoder::Create(options);
  auto decoder = *Decoder::Create(options.ToHeader());
  for (int i = 0; i < 8; ++i) {
    Frame frame(64, 32);
    for (auto& v : frame.y_plane()) v = static_cast<uint8_t>(rng.Next());
    for (auto& v : frame.u_plane()) v = static_cast<uint8_t>(rng.Next());
    for (auto& v : frame.v_plane()) v = static_cast<uint8_t>(rng.Next());
    auto encoded = encoder->Encode(frame);
    ASSERT_TRUE(encoded.ok());
    auto decoded = decoder->Decode(Slice(encoded->payload));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->y_plane(), encoder->reconstructed().y_plane());
    ASSERT_EQ(decoded->u_plane(), encoder->reconstructed().u_plane());
    ASSERT_EQ(decoded->v_plane(), encoder->reconstructed().v_plane());
  }
}

}  // namespace
}  // namespace vc
