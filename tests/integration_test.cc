// Cross-module integration tests: exercise whole pipelines the way a
// deployment would — real filesystem persistence across process-like
// reopens, manifest interchange, and composition of export with the
// monolithic GOP-index path.

#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "common/env.h"
#include "core/export.h"
#include "core/session.h"
#include "core/visualcloud.h"
#include "image/metrics.h"
#include "predict/trace_synthesizer.h"
#include "storage/monolithic.h"
#include "streaming/manifest.h"

namespace vc {
namespace {

IngestOptions SmallIngest() {
  IngestOptions ingest;
  ingest.tile_rows = 2;
  ingest.tile_cols = 2;
  ingest.frames_per_segment = 4;
  ingest.fps = 4.0;
  ingest.ladder = {{"high", 16}, {"low", 40}};
  return ingest;
}

SceneOptions SmallScene() {
  SceneOptions options;
  options.width = 64;
  options.height = 32;
  return options;
}

TEST(IntegrationTest, DiskPersistenceSurvivesReopen) {
  // Ingest against the real filesystem, tear the instance down, reopen a
  // fresh one on the same root, and verify catalog + pixels survive.
  std::string root = ::testing::TempDir() + "/vc_persist_test";
  Env::Default()->RemoveDirRecursive(root).ok();

  auto scene = NewVeniceScene(SmallScene());
  std::vector<Frame> original = RenderScene(*scene, 8);
  {
    VisualCloudOptions options;
    options.storage.root = root;
    auto db = *VisualCloud::Open(options);
    auto version = db->IngestScene("persist", *scene, 8, SmallIngest());
    ASSERT_TRUE(version.ok()) << version.status().ToString();
  }
  {
    VisualCloudOptions options;
    options.storage.root = root;
    auto db = *VisualCloud::Open(options);
    auto videos = db->List();
    ASSERT_TRUE(videos.ok());
    ASSERT_EQ(videos->size(), 1u);
    EXPECT_EQ((*videos)[0], "persist");
    auto frames = db->ReadFrames("persist", 0, 7, 0);
    ASSERT_TRUE(frames.ok()) << frames.status().ToString();
    for (int i = 0; i < 8; ++i) {
      auto psnr = LumaPsnr(original[i], (*frames)[i]);
      ASSERT_TRUE(psnr.ok());
      EXPECT_GT(*psnr, 30.0);
    }
  }
  ASSERT_TRUE(Env::Default()->RemoveDirRecursive(root).ok());
}

TEST(IntegrationTest, ManifestFromStoreDrivesPlanning) {
  // A remote client that only has the manifest can compute exactly the
  // byte budgets the server computes from its own metadata.
  auto env = NewMemEnv();
  VisualCloudOptions options;
  options.storage.env = env.get();
  options.storage.root = "/db";
  auto db = *VisualCloud::Open(options);
  auto scene = NewCoasterScene(SmallScene());
  ASSERT_TRUE(db->IngestScene("m", *scene, 8, SmallIngest()).ok());
  auto metadata = *db->Describe("m");

  std::string manifest_text = GenerateManifest(metadata);
  auto client_view = ParseManifest(Slice(manifest_text));
  ASSERT_TRUE(client_view.ok());
  for (int segment = 0; segment < metadata.segment_count(); ++segment) {
    for (int quality = 0; quality < metadata.quality_count(); ++quality) {
      EXPECT_EQ(client_view->SegmentBytesAtQuality(segment, quality),
                metadata.SegmentBytesAtQuality(segment, quality));
    }
  }
}

TEST(IntegrationTest, ExportFeedsMonolithicIndexPath) {
  // Tiled store → homomorphic export → monolithic file + GOP index →
  // indexed random access decodes the right frames.
  auto env = NewMemEnv();
  VisualCloudOptions options;
  options.storage.env = env.get();
  options.storage.root = "/db";
  auto db = *VisualCloud::Open(options);
  auto scene = NewTimelapseScene(SmallScene());
  ASSERT_TRUE(db->IngestScene("x", *scene, 12, SmallIngest()).ok());
  auto metadata = *db->Describe("x");

  auto exported = ExportMonolithic(db->storage(), metadata, 0);
  ASSERT_TRUE(exported.ok());
  auto index = WriteMonolithicStream(env.get(), "/x.vcc", *exported);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->entries.size(), 3u);  // 12 frames / 4-frame segments

  // Random-access frames 5..6 (second GOP) and decode them.
  auto range = ReadFrameRangeIndexed(env.get(), "/x.vcc", *index, 5, 6);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->first_frame, 4u);
  auto decoder = *Decoder::Create(range->header);
  Frame decoded;
  for (uint32_t i = 0; i <= 6 - range->first_frame; ++i) {
    auto frame = decoder->Decode(Slice(range->frames[i].payload));
    ASSERT_TRUE(frame.ok());
    decoded = std::move(*frame);
  }
  auto psnr = LumaPsnr(scene->FrameAt(6), decoded);
  ASSERT_TRUE(psnr.ok());
  EXPECT_GT(*psnr, 30.0);
}

TEST(IntegrationTest, SessionOverVariableBandwidthTrace) {
  // Bandwidth that collapses mid-session: the adaptive session must finish
  // without error, with fewer bytes than the rich-network run and visible
  // degradation (higher in-view rung).
  auto env = NewMemEnv();
  VisualCloudOptions options;
  options.storage.env = env.get();
  options.storage.root = "/db";
  auto db = *VisualCloud::Open(options);
  auto scene = NewCoasterScene(SmallScene());
  ASSERT_TRUE(db->IngestScene("bw", *scene, 96, SmallIngest()).ok());
  auto metadata = *db->Describe("bw");  // 24 one-second segments

  auto trace_options = ArchetypeOptions("explorer", 2);
  trace_options->duration_seconds = 24;
  auto trace = *SynthesizeTrace(*trace_options);

  SessionOptions session;
  session.approach = StreamingApproach::kVisualCloud;
  session.network.bandwidth_bps = 10e6;
  session.buffer_ahead_seconds = 0.5;  // react quickly to the collapse
  auto rich = SimulateSession(db->storage(), metadata, trace, session);
  ASSERT_TRUE(rich.ok());
  EXPECT_EQ(rich->stall_seconds, 0.0);

  // Collapse to 8 kbps after 1 s: transfers slower than real time until
  // the throughput estimator converges and adaptation shrinks the plans.
  session.network.bandwidth_trace = {{1.0, 8e3}};
  auto poor = SimulateSession(db->storage(), metadata, trace, session);
  ASSERT_TRUE(poor.ok());
  EXPECT_LT(poor->bytes_sent, rich->bytes_sent)
      << "adaptation after the collapse must shrink later segments";
  EXPECT_GT(poor->mean_inview_quality, rich->mean_inview_quality);
  EXPECT_GT(poor->stall_seconds, 0.0)
      << "segments planned before the estimator converged must stall";
}

TEST(IntegrationTest, LiveCheckpointStreamsWhileIngestContinues) {
  // Interleave: push, checkpoint, stream the checkpoint, push more, finish
  // — on one VisualCloud instance with a disk-backed layout in memory.
  auto env = NewMemEnv();
  VisualCloudOptions options;
  options.storage.env = env.get();
  options.storage.root = "/db";
  auto db = *VisualCloud::Open(options);
  auto scene = NewVeniceScene(SmallScene());
  auto live = *db->StartLiveIngest("feed", 64, 32, SmallIngest());

  auto trace_options = ArchetypeOptions("calm", 5);
  trace_options->duration_seconds = 2;
  auto trace = *SynthesizeTrace(*trace_options);

  uint64_t previous_bytes = 0;
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(live->AppendFrame(scene->FrameAt(batch * 4 + i)).ok());
    }
    auto version = live->Checkpoint();
    ASSERT_TRUE(version.ok());
    auto snapshot = *db->storage()->GetVideoVersion("feed", *version);
    SessionOptions session;
    session.approach = StreamingApproach::kVisualCloud;
    auto stats = SimulateSession(db->storage(), snapshot, trace, session);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_GT(stats->bytes_sent, previous_bytes)
        << "each checkpoint should stream strictly more content";
    previous_bytes = stats->bytes_sent;
  }
  ASSERT_TRUE(live->Close().ok());
  EXPECT_EQ((*db->Describe("feed")).segment_count(), 3);
}

}  // namespace
}  // namespace vc
