#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "common/env.h"
#include "core/visualcloud.h"
#include "obs/metrics.h"
#include "query/executor.h"
#include "query/parser.h"
#include "streaming/manifest.h"

namespace vc {
namespace {

/// One in-memory catalog shared by all query tests: a 4-second venice clip
/// at 4x4 tiles, 8-frame 1-second segments, 3-rung ladder — small enough
/// that the encode in SetUpTestSuite dominates, every test after it is
/// cheap.
class QueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = NewMemEnv().release();
    VisualCloudOptions options;
    options.storage.env = env_;
    options.storage.root = "/vcdb";
    auto db = VisualCloud::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = db->release();

    SceneOptions scene_options;
    scene_options.width = 128;
    scene_options.height = 64;
    auto scene = NewVeniceScene(scene_options);

    IngestOptions ingest;
    ingest.tile_rows = 4;
    ingest.tile_cols = 4;
    ingest.frames_per_segment = 8;
    ingest.fps = 8.0;
    ingest.ladder = {{"high", 14}, {"medium", 28}, {"low", 42}};
    auto version = db_->IngestScene("venice", *scene, 32, ingest);
    ASSERT_TRUE(version.ok()) << version.status().ToString();
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete env_;
    env_ = nullptr;
  }

  static StorageManager* storage() { return db_->storage(); }

  static void ExpectFramesEqual(const std::vector<Frame>& a,
                                const std::vector<Frame>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(a[i].SameSize(b[i])) << "frame " << i;
      EXPECT_EQ(a[i].y_plane(), b[i].y_plane()) << "frame " << i;
      EXPECT_EQ(a[i].u_plane(), b[i].u_plane()) << "frame " << i;
      EXPECT_EQ(a[i].v_plane(), b[i].v_plane()) << "frame " << i;
    }
  }

  static VisualCloud* db_;
  static Env* env_;
};

VisualCloud* QueryTest::db_ = nullptr;
Env* QueryTest::env_ = nullptr;

// --- algebra + parser ------------------------------------------------------

TEST(QueryAlgebraTest, BuilderEmitsParseableText) {
  Query q = Query::Scan("venice")
                .TimeSlice(1.0, 3.5)
                .Viewport(kPi, kPi / 2, DegToRad(100), DegToRad(80))
                .QualityFloor("high")
                .Degrade("low");
  std::string text = q.ToString();
  auto reparsed = ParseQuery(Slice(text));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToString(), text);
}

TEST(QueryAlgebraTest, UnionAndSinksRoundTrip) {
  Query q = Query::Union({Query::Scan("a").FrameSlice(0, 7),
                          Query::Scan("b").FrameSlice(8, 15)})
                .QualityFloor("medium")
                .Encode(20)
                .Store("merged");
  auto reparsed = ParseQuery(Slice(q.ToString()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToString(), q.ToString());
}

TEST(QueryAlgebraTest, SubscribeRoundTrip) {
  Query q = Query::Scan("cam")
                .QualityFloor("high")
                .Encode()
                .Store("cam_hi")
                .Subscribe("cam_hi");
  auto reparsed = ParseQuery(Slice(q.ToString()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToString(), q.ToString());
  EXPECT_FALSE(ParseQuery(Slice("scan(a) | subscribe()")).ok());
}

TEST(QueryAlgebraTest, ParserReportsOffset) {
  auto bad = ParseQuery(Slice("scan(venice) | warp(1,2)"));
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("query parse error at offset"),
            std::string::npos)
      << bad.status().ToString();

  EXPECT_FALSE(ParseQuery(Slice("")).ok());
  EXPECT_FALSE(ParseQuery(Slice("scan(venice")).ok());
  EXPECT_FALSE(ParseQuery(Slice("scan(v) | timeslice(1)")).ok());
  EXPECT_FALSE(ParseQuery(Slice("scan(v) | encode | junk")).ok());
}

// --- optimizer -------------------------------------------------------------

TEST_F(QueryTest, TimeSliceBecomesSegmentRange) {
  // [1s, 3s) at 8 fps = frames [8, 23] = segments 1 and 2 of 4.
  Query q = Query::Scan("venice").TimeSlice(1.0, 3.0).QualityFloor("low");
  auto plan = Optimize(q, storage());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->scans.size(), 1u);
  const ScanPlan& scan = plan->scans[0];
  ASSERT_EQ(scan.slices.size(), 2u);
  EXPECT_EQ(scan.slices[0].segment, 1);
  EXPECT_EQ(scan.slices[0].first_frame, 8);
  EXPECT_EQ(scan.slices[0].last_frame, 15);
  EXPECT_EQ(scan.slices[1].segment, 2);
  EXPECT_TRUE(scan.slices[1].WholeSegment(scan.metadata));
  // No viewport: every tile survives, at the pushed-down rung.
  for (int rung : scan.slices[0].tile_quality) EXPECT_EQ(rung, 2);
}

TEST_F(QueryTest, ViewportPrunesTiles) {
  Query q = Query::Scan("venice")
                .Viewport(kPi, kPi / 2, DegToRad(90), DegToRad(60))
                .QualityFloor("high");
  auto plan = Optimize(q, storage());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  int kept = 0, pruned = 0;
  for (int rung : plan->scans[0].slices[0].tile_quality) {
    (rung >= 0 ? kept : pruned) += 1;
  }
  EXPECT_GT(kept, 0);
  EXPECT_GT(pruned, 0);
  EXPECT_LT(plan->ScannedCells(), plan->TotalCells());

  bool saw_tile_rule = false;
  for (const std::string& line : plan->rewrites) {
    if (line.find("viewport->tiles: kept") != std::string::npos) {
      saw_tile_rule = true;
    }
  }
  EXPECT_TRUE(saw_tile_rule);
}

TEST_F(QueryTest, DegradeKeepsPeripheryAtLowerRung) {
  Query q = Query::Scan("venice")
                .Viewport(kPi, kPi / 2, DegToRad(90), DegToRad(60))
                .QualityFloor("high")
                .Degrade("low");
  auto plan = Optimize(q, storage());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  int in_view = 0, degraded = 0;
  for (int rung : plan->scans[0].slices[0].tile_quality) {
    ASSERT_GE(rung, 0);  // degrade never prunes
    (rung == 0 ? in_view : degraded) += 1;
  }
  EXPECT_GT(in_view, 0);
  EXPECT_GT(degraded, 0);
  // Every tile is still scanned — degrade trades bytes, not coverage.
  EXPECT_EQ(plan->ScannedCells(), plan->TotalCells());
}

TEST_F(QueryTest, AdjacentPredicatesFuse) {
  Query q = Query::Scan("venice")
                .TimeSlice(0.0, 3.0)
                .TimeSlice(1.0, 4.0)  // intersects to [1, 3)
                .QualityFloor("medium");
  auto plan = Optimize(q, storage());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->scans[0].slices.size(), 2u);
  EXPECT_EQ(plan->scans[0].slices.front().segment, 1);
  bool fused = false;
  for (const std::string& line : plan->rewrites) {
    if (line.find("fuse-timeslice: 2 time predicates") != std::string::npos) {
      fused = true;
    }
  }
  EXPECT_TRUE(fused);
}

TEST_F(QueryTest, ExplainGolden) {
  Query q = Query::Scan("venice").FrameSlice(0, 7).QualityFloor("high");
  auto plan = Optimize(q, storage());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->Explain(),
            "plan: sink=materialize\n"
            "scan venice v1: 4 segments, 4x4 tiles, 3 rungs\n"
            "  s0 frames [0,7] tiles 0@0,1@0,2@0,3@0,4@0,5@0,6@0,7@0,8@0,"
            "9@0,10@0,11@0,12@0,13@0,14@0,15@0\n"
            "cells: scan 16 of 64 (pruned 48 = 75.0%)\n"
            "rewrites:\n"
            "  - timeslice->segments: frames [0,7] -> segments [0,0] of 4\n"
            "  - quality-pushdown: serve stored rung 0 ('high')\n");
}

TEST_F(QueryTest, ExplainCostAlternativesGolden) {
  // A hand-stored video with 1000-byte cells pins the operand volumes, and
  // the explicit default CostModel pins the coefficients, so the estimates
  // below are pure arithmetic: cost-model changes show up as a text diff.
  VideoMetadata m;
  m.name = "flat";
  m.width = 128;
  m.height = 64;
  m.fps_times_100 = 800;
  m.frames_per_segment = 8;
  m.tile_rows = 2;
  m.tile_cols = 2;
  m.ladder = {{"only", 30}};
  m.segments = {{0, 8}, {8, 8}};
  auto stored = storage()->StoreVideo(
      m, std::vector<std::vector<uint8_t>>(8, std::vector<uint8_t>(1000, 7)));
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();

  const CostModel pinned;
  OptimizeOptions options;
  options.cost_model = &pinned;
  Query q = Query::Scan("flat").QualityFloor("only").Encode();
  auto plan = Optimize(q, storage(), options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->Explain(),
            "plan: sink=encode transcode=elided\n"
            "scan flat v1: 2 segments, 2x2 tiles, 1 rungs\n"
            "  s0 frames [0,7] tiles 0@0,1@0,2@0,3@0\n"
            "  s1 frames [8,15] tiles 0@0,1@0,2@0,3@0\n"
            "cells: scan 8 of 8 (pruned 0 = 0.0%)\n"
            "alternatives:\n"
            "  - stitch: est 0.320ms (8 cells, 8000B stored) [chosen]\n"
            "  - re-encode: est 19.009ms (would change output bytes "
            "(re-quantizes elided plan)) [infeasible]\n"
            "rewrites:\n"
            "  - quality-pushdown: serve stored rung 0 ('only')\n"
            "  - transcode-elision: full grid of whole segments at rung 0 -> "
            "stitch stored bitstreams, no transcode\n"
            "  - cost-choice: stitch est 0.320ms (cheapest of 2 "
            "alternatives)\n");
}

TEST_F(QueryTest, SubscribePeelsToStandingName) {
  Query q =
      Query::Scan("venice").QualityFloor("high").Encode().Subscribe("watch");
  auto plan = Optimize(q, storage());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->standing_name, "watch");
  EXPECT_EQ(plan->sink, SinkKind::kEncode);
  EXPECT_NE(plan->Explain().find(" standing=watch"), std::string::npos);
}

TEST_F(QueryTest, OptimizeErrors) {
  EXPECT_FALSE(Optimize(Query::Scan("nope"), storage()).ok());

  auto empty = Optimize(Query::Scan("venice").TimeSlice(2.0, 2.0), storage());
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().ToString().find("empty timeslice"),
            std::string::npos);

  auto bad_rung =
      Optimize(Query::Scan("venice").QualityFloor("ultra"), storage());
  EXPECT_FALSE(bad_rung.ok());

  auto store_sans_encode =
      Optimize(Query::Scan("venice").Store("copy"), storage());
  ASSERT_FALSE(store_sans_encode.ok());
  EXPECT_NE(store_sans_encode.status().ToString().find(
                "sink requires an encoded input"),
            std::string::npos);
}

// --- executor --------------------------------------------------------------

TEST_F(QueryTest, PrunedMatchesNaiveByteForByte) {
  Query q = Query::Scan("venice")
                .TimeSlice(0.5, 2.5)
                .Viewport(kPi / 2, kPi / 2, DegToRad(100), DegToRad(70))
                .QualityFloor("medium");
  auto plan = Optimize(q, storage());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  auto pruned = ExecutePlan(*plan, storage());
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  ExecuteOptions naive_options;
  naive_options.naive_full_scan = true;
  auto naive = ExecutePlan(*plan, storage(), naive_options);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();

  EXPECT_LT(pruned->cells_scanned, naive->cells_scanned);
  EXPECT_GT(pruned->cells_pruned, 0);
  EXPECT_EQ(naive->cells_pruned, 0);  // the baseline prunes nothing
  ExpectFramesEqual(pruned->frames, naive->frames);
}

TEST_F(QueryTest, FrameSliceMaterializesExactRange) {
  Query q = Query::Scan("venice").FrameSlice(3, 12).QualityFloor("high");
  auto result = ExecuteQuery(q, storage());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->frames.size(), 10u);
}

TEST_F(QueryTest, TranscodeElisionOnFullGridExport) {
  Query q = Query::Scan("venice").QualityFloor("medium").Encode();
  auto plan = Optimize(q, storage());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->transcode_free);

  auto stitched = ExecutePlan(*plan, storage());
  ASSERT_TRUE(stitched.ok()) << stitched.status().ToString();
  ASSERT_TRUE(stitched->has_encoded);
  EXPECT_EQ(stitched->transcodes, 0);
  EXPECT_EQ(stitched->transcodes_avoided, 4);  // one merge per segment

  // An explicit quantizer defeats elision and forces a real transcode.
  auto forced = Optimize(
      Query::Scan("venice").QualityFloor("medium").Encode(20), storage());
  ASSERT_TRUE(forced.ok()) << forced.status().ToString();
  EXPECT_FALSE(forced->transcode_free);
  auto transcoded = ExecutePlan(*forced, storage());
  ASSERT_TRUE(transcoded.ok()) << transcoded.status().ToString();
  EXPECT_GT(transcoded->transcodes, 0);
  EXPECT_EQ(transcoded->transcodes_avoided, 0);

  // Both serve the same 32 frames.
  auto a = DecodeVideo(stitched->encoded);
  auto b = DecodeVideo(transcoded->encoded);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->size(), 32u);
  EXPECT_EQ(b->size(), 32u);
}

TEST_F(QueryTest, StoreSinkCreatesCatalogVideo) {
  Query q = Query::Scan("venice")
                .TimeSlice(0.0, 2.0)
                .QualityFloor("low")
                .Encode()
                .Store("venice_clip");
  auto result = ExecuteQuery(q, storage());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stored_version, 1u);

  auto stored = db_->Describe("venice_clip");
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  EXPECT_EQ(stored->segment_count(), 2);
  EXPECT_EQ(stored->tile_rows, 4);
  EXPECT_EQ(stored->tile_cols, 4);
  EXPECT_EQ(stored->quality_count(), 1);
}

TEST_F(QueryTest, QueryCountersAreRegistered) {
  auto result = ExecuteQuery(
      Query::Scan("venice").FrameSlice(0, 7).QualityFloor("low"), storage());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
  EXPECT_GT(snapshot.counters["query.cells_scanned"], 0u);
  EXPECT_GT(snapshot.counters["query.cells_pruned"], 0u);
  EXPECT_GT(snapshot.histograms["query.plan_seconds"].count, 0u);
  EXPECT_GT(snapshot.histograms["query.exec_seconds"].count, 0u);
}

// --- manifest plan overlay -------------------------------------------------

TEST_F(QueryTest, ManifestCarriesPlanAndReserializesByteIdentical) {
  Query q = Query::Scan("venice")
                .TimeSlice(1.0, 3.0)
                .Viewport(kPi, kPi / 2, DegToRad(100), DegToRad(70))
                .QualityFloor("high")
                .Degrade("low");
  auto plan = Optimize(q, storage());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ManifestPlan overlay = ToManifestPlan(plan->scans[0]);
  ASSERT_EQ(overlay.entries.size(), plan->scans[0].slices.size());

  // Full ladder + per-tile plan overlay must survive a parse round trip
  // byte-identically.
  const VideoMetadata& metadata = plan->scans[0].metadata;
  std::string text = GenerateManifest(metadata, &overlay);
  ManifestPlan reparsed_plan;
  auto reparsed = ParseManifest(Slice(text), &reparsed_plan);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->quality_count(), 3);
  ASSERT_EQ(reparsed_plan.entries.size(), overlay.entries.size());
  for (size_t i = 0; i < overlay.entries.size(); ++i) {
    EXPECT_EQ(reparsed_plan.entries[i].segment, overlay.entries[i].segment);
    EXPECT_EQ(reparsed_plan.entries[i].tile_quality,
              overlay.entries[i].tile_quality);
  }
  reparsed->data_dir = metadata.data_dir;  // server-side detail, not carried
  EXPECT_EQ(GenerateManifest(*reparsed, &reparsed_plan), text);

  // A manifest without an overlay leaves the out-param empty.
  ManifestPlan none;
  none.entries.push_back({0, {0}});
  auto plain = ParseManifest(Slice(GenerateManifest(metadata)), &none);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(none.empty());
}

TEST_F(QueryTest, ManifestRejectsMalformedPlan) {
  auto metadata = db_->Describe("venice");
  ASSERT_TRUE(metadata.ok());
  std::string text = GenerateManifest(*metadata);

  ManifestPlan plan;
  EXPECT_FALSE(ParseManifest(Slice(text + "plan 1 0 0\n"), &plan).ok())
      << "tile count mismatch must be rejected";
  std::string full_row = "plan 9";
  for (int i = 0; i < metadata->tile_count(); ++i) full_row += " 0";
  EXPECT_FALSE(ParseManifest(Slice(text + full_row + "\n"), &plan).ok())
      << "out-of-range segment must be rejected";
}

}  // namespace
}  // namespace vc
