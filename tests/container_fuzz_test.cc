#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "container/box.h"
#include "container/boxes.h"
#include "storage/metadata.h"

// Deterministic fuzzing of the VCMF container (ROADMAP item 6), at both
// layers: the raw box-tree walker (ParseBoxes) and the full
// VideoMetadata::Parse catalog decoder built on it. A valid serialized
// metadata blob is truncated at every length, bit-flipped, and
// pattern-filled; the contract under test is totality — clean Status or
// success, never a crash or out-of-bounds access (the ASan/UBSan CI leg
// runs this suite). Mutants that parse must re-serialize to a blob that
// parses again.

namespace vc {
namespace {

std::vector<uint8_t> Fixture() {
  VideoMetadata m;
  m.name = "container-fuzz";
  m.version = 5;
  m.streaming = true;
  m.width = 256;
  m.height = 128;
  m.fps_times_100 = 3000;
  m.frames_per_segment = 10;
  m.tile_rows = 2;
  m.tile_cols = 2;
  m.ladder = {{"high", 16}, {"mid", 30}, {"low", 44}};
  m.segments = {{0, 10}, {10, 10}, {20, 3}};
  m.cells.resize(3 * 4 * 3);
  for (size_t i = 0; i < m.cells.size(); ++i) {
    m.cells[i] = CellInfo{500 + i * 31, static_cast<uint32_t>(0xFACE + i)};
  }
  return m.Serialize();
}

void DriveParsers(const std::vector<uint8_t>& bytes) {
  // Layer 1: the raw box walker must tolerate anything.
  auto boxes = ParseBoxes(Slice(bytes));
  if (boxes.ok()) {
    auto rebuilt = SerializeBoxes(*boxes);
    EXPECT_TRUE(ParseBoxes(Slice(rebuilt)).ok())
        << "re-serialized box tree failed to re-parse";
  }
  // Layer 2: the catalog metadata decoder on top of it.
  auto metadata = VideoMetadata::Parse(Slice(bytes));
  if (metadata.ok()) {
    auto reserialized = metadata->Serialize();
    EXPECT_TRUE(VideoMetadata::Parse(Slice(reserialized)).ok())
        << "re-serialized metadata failed to re-parse";
  }
}

TEST(ContainerFuzzTest, TruncationsFailCleanly) {
  auto bytes = Fixture();
  for (size_t keep = 0; keep <= bytes.size(); ++keep) {
    DriveParsers(std::vector<uint8_t>(bytes.begin(), bytes.begin() + keep));
  }
}

TEST(ContainerFuzzTest, BitFlipsFailCleanly) {
  auto bytes = Fixture();
  Random rng(20260808);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> mutant = bytes;
    int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < flips; ++i) {
      size_t bit = rng.Uniform(static_cast<uint32_t>(mutant.size() * 8));
      mutant[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    DriveParsers(mutant);
  }
}

TEST(ContainerFuzzTest, ByteEditsFailCleanly) {
  // Multi-byte overwrites go after length fields harder than single flips:
  // box sizes and counts are little-endian words, so random word-aligned
  // splats hit huge/zero/negative-looking sizes.
  auto bytes = Fixture();
  Random rng(1337);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutant = bytes;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < edits; ++i) {
      size_t pos = rng.Uniform(static_cast<uint32_t>(mutant.size()));
      uint32_t value = static_cast<uint32_t>(rng.Next());
      for (size_t b = 0; b < 4 && pos + b < mutant.size(); ++b) {
        mutant[pos + b] = static_cast<uint8_t>(value >> (8 * b));
      }
    }
    DriveParsers(mutant);
  }
}

TEST(ContainerFuzzTest, PatternFillsFailCleanly) {
  auto bytes = Fixture();
  for (uint8_t fill : {0x00, 0xff, 0xaa, 0x41}) {
    std::vector<uint8_t> mutant = bytes;
    // Keep the leading magic so parsing reaches the box walker.
    for (size_t i = 8; i < mutant.size(); ++i) mutant[i] = fill;
    DriveParsers(mutant);
  }
}

}  // namespace
}  // namespace vc
