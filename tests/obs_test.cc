#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace vc {
namespace {

// Each test uses its own registry instance (not Global()) so tests do not
// see counters bumped by other suites in the same process.

TEST(CounterTest, AddAndReset) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsFromThreadPool) {
  Counter counter;
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 10'000;
  {
    ThreadPool pool(8);
    for (int i = 0; i < kTasks; ++i) {
      ASSERT_TRUE(pool.Submit([&counter] {
        for (int j = 0; j < kAddsPerTask; ++j) counter.Add();
      }));
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.Value(), uint64_t{kTasks} * kAddsPerTask);
}

TEST(GaugeTest, SetAndReset) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(3.25);
  EXPECT_EQ(gauge.Value(), 3.25);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreUpperInclusive) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);   // bucket 0 (<= 1.0)
  histogram.Observe(1.0);   // bucket 0 (boundary is inclusive)
  histogram.Observe(1.001); // bucket 1
  histogram.Observe(4.0);   // bucket 2
  histogram.Observe(99.0);  // overflow bucket
  HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_NEAR(snapshot.sum, 0.5 + 1.0 + 1.001 + 4.0 + 99.0, 1e-12);
  EXPECT_NEAR(snapshot.Mean(), snapshot.sum / 5.0, 1e-12);
}

TEST(HistogramTest, PercentileReportsBucketBound) {
  Histogram histogram({1.0, 2.0, 4.0});
  for (int i = 0; i < 90; ++i) histogram.Observe(0.5);
  for (int i = 0; i < 10; ++i) histogram.Observe(3.0);
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.Percentile(0.5), 1.0);
  EXPECT_EQ(snapshot.Percentile(0.95), 4.0);
  // Overflow observations clamp to the last finite bound.
  Histogram overflow({1.0});
  overflow.Observe(100.0);
  EXPECT_EQ(overflow.Snapshot().Percentile(1.0), 1.0);
}

TEST(RegistryTest, ReturnsStableHandles) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("x.lat", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("x.lat", {9.0});  // bounds ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(RegistryTest, SnapshotAndResetSemantics) {
  MetricRegistry registry;
  registry.GetCounter("a.count")->Add(7);
  registry.GetGauge("a.gauge")->Set(2.5);
  registry.GetHistogram("a.lat", {1.0})->Observe(0.5);

  MetricsSnapshot before = registry.Snapshot();
  EXPECT_EQ(before.counters.at("a.count"), 7u);
  EXPECT_EQ(before.gauges.at("a.gauge"), 2.5);
  EXPECT_EQ(before.histograms.at("a.lat").count, 1u);

  registry.Reset();
  // Registrations (and handles) survive a reset; values drop to zero.
  MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.counters.at("a.count"), 0u);
  EXPECT_EQ(after.gauges.at("a.gauge"), 0.0);
  EXPECT_EQ(after.histograms.at("a.lat").count, 0u);
  registry.GetCounter("a.count")->Add();
  EXPECT_EQ(registry.Snapshot().counters.at("a.count"), 1u);
}

TEST(RegistryTest, ConcurrentRegistrationAndUpdates) {
  MetricRegistry registry;
  {
    ThreadPool pool(8);
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(pool.Submit([&registry, i] {
        registry.GetCounter("shared.count")->Add();
        registry.GetCounter("own." + std::to_string(i % 4))->Add();
        registry.GetHistogram("shared.lat")->Observe(1e-4);
      }));
    }
    pool.WaitIdle();
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("shared.count"), 64u);
  EXPECT_EQ(snapshot.histograms.at("shared.lat").count, 64u);
  uint64_t own_total = 0;
  for (int i = 0; i < 4; ++i) {
    own_total += snapshot.counters.at("own." + std::to_string(i));
  }
  EXPECT_EQ(own_total, 64u);
}

TEST(ScopedTimerTest, RecordsOneObservation) {
  Histogram histogram(DefaultLatencyBuckets());
  { ScopedTimer timer(&histogram); }
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_GE(snapshot.sum, 0.0);
  { ScopedTimer disabled(nullptr); }  // must not crash
}

TEST(ExportTest, JsonRoundTrip) {
  MetricRegistry registry;
  registry.GetCounter("net.transfers")->Add(12);
  registry.GetCounter("cache.hits")->Add(3);
  registry.GetGauge("net.goodput_bps")->Set(8.125e6);
  Histogram* lat = registry.GetHistogram("storage.read_seconds", {1e-3, 0.1});
  lat->Observe(5e-4);
  lat->Observe(0.05);
  lat->Observe(7.0);

  MetricsSnapshot original = registry.Snapshot();
  std::string json = MetricsToJson(original);
  auto parsed = MetricsFromJson(Slice(json));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->counters, original.counters);
  EXPECT_EQ(parsed->gauges, original.gauges);
  ASSERT_EQ(parsed->histograms.size(), original.histograms.size());
  const HistogramSnapshot& got = parsed->histograms.at("storage.read_seconds");
  const HistogramSnapshot& want =
      original.histograms.at("storage.read_seconds");
  EXPECT_EQ(got.bounds, want.bounds);
  EXPECT_EQ(got.counts, want.counts);
  EXPECT_EQ(got.count, want.count);
  EXPECT_EQ(got.sum, want.sum);
}

TEST(ExportTest, EmptySnapshotIsValidJson) {
  MetricsSnapshot empty;
  auto parsed = MetricsFromJson(Slice(MetricsToJson(empty)));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->empty());
}

TEST(ExportTest, RejectsMalformedJson) {
  EXPECT_FALSE(MetricsFromJson(Slice(std::string(""))).ok());
  EXPECT_FALSE(MetricsFromJson(Slice(std::string("{"))).ok());
  EXPECT_FALSE(MetricsFromJson(Slice(std::string("{\"bogus\": {}}"))).ok());
  EXPECT_FALSE(
      MetricsFromJson(Slice(std::string("{\"counters\": {}}x"))).ok());
  // Histogram with mismatched bucket arrays.
  std::string bad =
      "{\"histograms\": {\"h\": {\"bounds\": [1], \"counts\": [1], "
      "\"count\": 1, \"sum\": 1}}}";
  EXPECT_FALSE(MetricsFromJson(Slice(bad)).ok());
}

TEST(ExportTest, CsvHasHeaderAndRows) {
  MetricRegistry registry;
  registry.GetCounter("a.count")->Add(2);
  registry.GetGauge("b.gauge")->Set(1.5);
  registry.GetHistogram("c.lat", {1.0})->Observe(0.5);
  std::string csv = MetricsToCsv(registry.Snapshot());
  EXPECT_NE(csv.find("type,name,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,a.count,value,2\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,b.gauge,value,1.5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c.lat,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c.lat,p95,"), std::string::npos);
}

TEST(ExportTest, GlobalRegistrySnapshotSerializes) {
  // The process-wide registry (whatever other tests populated) must always
  // serialize to parseable JSON.
  auto parsed =
      MetricsFromJson(Slice(MetricsToJson(MetricRegistry::Global().Snapshot())));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
}

}  // namespace
}  // namespace vc
