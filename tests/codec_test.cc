#include <gtest/gtest.h>

#include <numeric>

#include "codec/bitstream.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/entropy.h"
#include "codec/homomorphic.h"
#include "codec/motion.h"
#include "codec/quality.h"
#include "codec/simd.h"
#include "codec/transform.h"
#include "common/random.h"
#include "image/metrics.h"
#include "image/scene.h"

namespace vc {
namespace {

// --------------------------------------------------------------- Transform

TEST(TransformTest, DctRoundTripIsLossless) {
  Random rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    ResidualBlock in;
    for (auto& v : in) {
      v = static_cast<int16_t>(static_cast<int>(rng.Uniform(511)) - 255);
    }
    CoeffBlock coeffs;
    ForwardDct(in, &coeffs);
    ResidualBlock out;
    InverseDct(coeffs, &out);
    for (int i = 0; i < kBlockPixels; ++i) {
      EXPECT_EQ(in[i], out[i]) << "trial " << trial << " index " << i;
    }
  }
}

TEST(TransformTest, DcCoefficientIsScaledMean) {
  ResidualBlock in;
  in.fill(100);
  CoeffBlock coeffs;
  ForwardDct(in, &coeffs);
  // Orthonormal DCT: DC = mean * 8 = 800 for a constant-100 block.
  EXPECT_NEAR(coeffs[0], 800.0, 1e-6);
  for (int i = 1; i < kBlockPixels; ++i) {
    EXPECT_NEAR(coeffs[i], 0.0, 1e-9);
  }
}

TEST(TransformTest, QStepDoublesEverySixQp) {
  EXPECT_NEAR(QStepForQp(6) / QStepForQp(0), 2.0, 1e-9);
  EXPECT_NEAR(QStepForQp(24) / QStepForQp(18), 2.0, 1e-9);
  EXPECT_GT(QStepForQp(51), QStepForQp(0));
}

TEST(TransformTest, QuantizeDequantizeBoundsError) {
  Random rng(12);
  double qstep = QStepForQp(20);
  CoeffBlock coeffs;
  for (auto& c : coeffs) c = rng.UniformDouble(-500, 500);
  LevelBlock levels;
  Quantize(coeffs, qstep, &levels);
  CoeffBlock recon;
  Dequantize(levels, qstep, &recon);
  for (int i = 0; i < kBlockPixels; ++i) {
    EXPECT_LE(std::abs(recon[i] - coeffs[i]), qstep)
        << "reconstruction off by more than one step";
  }
}

TEST(TransformTest, ZigzagIsAPermutation) {
  const auto& order = ZigzagOrder();
  std::array<int, kBlockPixels> seen{};
  for (int i : order) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kBlockPixels);
    seen[i]++;
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  // First entries follow the canonical diagonal walk.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 8);
  EXPECT_EQ(order[3], 16);
  EXPECT_EQ(order[4], 9);
  EXPECT_EQ(order[5], 2);
}

// ----------------------------------------------------------------- Entropy

TEST(EntropyTest, LevelBlockRoundTrip) {
  Random rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    LevelBlock in{};
    // Sparse blocks, as produced by quantization.
    for (int i = 0; i < kBlockPixels; ++i) {
      if (rng.Bernoulli(0.2)) {
        in[i] = static_cast<int32_t>(rng.Uniform(2000)) - 1000;
      }
    }
    BitWriter writer;
    EncodeLevelBlock(in, &writer);
    auto bytes = writer.Finish();
    BitReader reader{Slice(bytes)};
    LevelBlock out;
    ASSERT_TRUE(DecodeLevelBlock(&reader, &out).ok());
    EXPECT_EQ(in, out);
  }
}

TEST(EntropyTest, AllZeroBlockIsOneBit) {
  LevelBlock zeros{};
  BitWriter writer;
  EncodeLevelBlock(zeros, &writer);
  EXPECT_EQ(writer.bit_count(), 1u);  // UE(0) == one bit
}

TEST(EntropyTest, TruncatedStreamFails) {
  LevelBlock in{};
  in[0] = 500;
  in[63] = -3;
  BitWriter writer;
  EncodeLevelBlock(in, &writer);
  auto bytes = writer.Finish();
  bytes.resize(bytes.size() / 2);
  BitReader reader{Slice(bytes)};
  LevelBlock out;
  EXPECT_FALSE(DecodeLevelBlock(&reader, &out).ok());
}

// --------------------------------------------------------------- Bitstream

TEST(BitstreamTest, SequenceHeaderRoundTrip) {
  SequenceHeader header;
  header.width = 512;
  header.height = 256;
  header.fps_times_100 = 2997;
  header.gop_length = 30;
  header.qp = 33;
  header.tile_rows = 4;
  header.tile_cols = 8;
  header.flags = SequenceHeader::kFlagMotionConstrainedTiles;
  auto bytes = header.Serialize();
  EXPECT_EQ(bytes.size(), SequenceHeader::kSerializedSize);
  auto parsed = SequenceHeader::Parse(Slice(bytes));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->width, 512);
  EXPECT_EQ(parsed->height, 256);
  EXPECT_NEAR(parsed->fps(), 29.97, 1e-9);
  EXPECT_EQ(parsed->gop_length, 30);
  EXPECT_EQ(parsed->qp, 33);
  EXPECT_TRUE(parsed->motion_constrained_tiles());
  EXPECT_EQ(parsed->tile_grid().tile_count(), 32);
}

TEST(BitstreamTest, HeaderRejectsGarbage) {
  std::vector<uint8_t> junk(SequenceHeader::kSerializedSize, 0xAB);
  EXPECT_TRUE(SequenceHeader::Parse(Slice(junk)).status().IsCorruption());
  std::vector<uint8_t> tiny(4, 0);
  EXPECT_TRUE(SequenceHeader::Parse(Slice(tiny)).status().IsCorruption());
  // Valid magic but odd dimensions.
  SequenceHeader header;
  header.width = 100;  // not a multiple of 16
  header.height = 64;
  auto bytes = header.Serialize();
  EXPECT_FALSE(SequenceHeader::Parse(Slice(bytes)).ok());
}

// ------------------------------------------------------ Encode/decode E2E

EncoderOptions SmallOptions() {
  EncoderOptions options;
  options.width = 128;
  options.height = 64;
  options.gop_length = 8;
  options.qp = 20;
  return options;
}

std::vector<Frame> TestFrames(int count, int width = 128, int height = 64) {
  SceneOptions scene_options;
  scene_options.width = width;
  scene_options.height = height;
  auto scene = NewVeniceScene(scene_options);
  return RenderScene(*scene, count);
}

TEST(CodecTest, OptionsValidation) {
  EncoderOptions options = SmallOptions();
  EXPECT_TRUE(options.Validate().ok());
  options.width = 100;
  EXPECT_FALSE(options.Validate().ok());
  options = SmallOptions();
  options.qp = 52;
  EXPECT_FALSE(options.Validate().ok());
  options = SmallOptions();
  options.gop_length = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = SmallOptions();
  options.tile_rows = 300;
  EXPECT_FALSE(options.Validate().ok());
  options = SmallOptions();
  options.motion_range = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(CodecTest, SingleIntraFrameRoundTrip) {
  auto frames = TestFrames(1);
  auto encoder = Encoder::Create(SmallOptions());
  ASSERT_TRUE(encoder.ok());
  auto encoded = (*encoder)->Encode(frames[0]);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->type, FrameType::kIntra);

  auto decoder = Decoder::Create((*encoder)->header());
  ASSERT_TRUE(decoder.ok());
  auto decoded = (*decoder)->Decode(Slice(encoded->payload));
  ASSERT_TRUE(decoded.ok());
  auto psnr = LumaPsnr(frames[0], *decoded);
  ASSERT_TRUE(psnr.ok());
  EXPECT_GT(*psnr, 30.0) << "QP 20 intra should exceed 30 dB";
}

TEST(CodecTest, DecoderMatchesEncoderReconstruction) {
  // The decoder must reproduce the encoder's reconstruction bit-exactly;
  // anything else means encoder/decoder drift that compounds across GOPs.
  auto frames = TestFrames(12);
  auto encoder = Encoder::Create(SmallOptions());
  ASSERT_TRUE(encoder.ok());
  auto decoder = Decoder::Create((*encoder)->header());
  ASSERT_TRUE(decoder.ok());
  for (const Frame& frame : frames) {
    auto encoded = (*encoder)->Encode(frame);
    ASSERT_TRUE(encoded.ok());
    auto decoded = (*decoder)->Decode(Slice(encoded->payload));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->y_plane(), (*encoder)->reconstructed().y_plane());
    EXPECT_EQ(decoded->u_plane(), (*encoder)->reconstructed().u_plane());
    EXPECT_EQ(decoded->v_plane(), (*encoder)->reconstructed().v_plane());
  }
}

TEST(CodecTest, GopStructure) {
  auto frames = TestFrames(17);
  EncoderOptions options = SmallOptions();
  options.gop_length = 8;
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());
  ASSERT_EQ(video->frames.size(), 17u);
  for (size_t i = 0; i < video->frames.size(); ++i) {
    FrameType expected =
        i % 8 == 0 ? FrameType::kIntra : FrameType::kInter;
    EXPECT_EQ(video->frames[i].type, expected) << "frame " << i;
  }
}

TEST(CodecTest, ForceKeyframe) {
  auto frames = TestFrames(4);
  auto encoder = Encoder::Create(SmallOptions());
  ASSERT_TRUE(encoder.ok());
  ASSERT_TRUE((*encoder)->Encode(frames[0]).ok());
  auto second = (*encoder)->Encode(frames[1]);
  EXPECT_EQ(second->type, FrameType::kInter);
  (*encoder)->ForceKeyframe();
  auto third = (*encoder)->Encode(frames[2]);
  EXPECT_EQ(third->type, FrameType::kIntra);
}

TEST(CodecTest, InterFramesAreSmallerThanIntra) {
  auto frames = TestFrames(8);
  auto video = EncodeVideo(frames, SmallOptions());
  ASSERT_TRUE(video.ok());
  size_t intra_size = video->frames[0].size_bytes();
  double inter_total = 0;
  for (size_t i = 1; i < video->frames.size(); ++i) {
    inter_total += video->frames[i].size_bytes();
  }
  double inter_mean = inter_total / (video->frames.size() - 1);
  EXPECT_LT(inter_mean, intra_size)
      << "motion compensation should beat intra coding on average";
}

TEST(CodecTest, HigherQpMeansFewerBytesAndLowerQuality) {
  auto frames = TestFrames(6);
  EncoderOptions low_qp = SmallOptions();
  low_qp.qp = 10;
  EncoderOptions high_qp = SmallOptions();
  high_qp.qp = 40;

  auto video_lo = EncodeVideo(frames, low_qp);
  auto video_hi = EncodeVideo(frames, high_qp);
  ASSERT_TRUE(video_lo.ok());
  ASSERT_TRUE(video_hi.ok());
  EXPECT_LT(video_hi->size_bytes(), video_lo->size_bytes());

  auto decoded_lo = DecodeVideo(*video_lo);
  auto decoded_hi = DecodeVideo(*video_hi);
  ASSERT_TRUE(decoded_lo.ok());
  ASSERT_TRUE(decoded_hi.ok());
  double psnr_lo = 0, psnr_hi = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    psnr_lo += *LumaPsnr(frames[i], (*decoded_lo)[i]);
    psnr_hi += *LumaPsnr(frames[i], (*decoded_hi)[i]);
  }
  EXPECT_GT(psnr_lo, psnr_hi);
}

TEST(CodecTest, VideoSerializationRoundTrip) {
  auto frames = TestFrames(5);
  auto video = EncodeVideo(frames, SmallOptions());
  ASSERT_TRUE(video.ok());
  auto bytes = video->Serialize();
  EXPECT_EQ(bytes.size(), video->size_bytes());
  auto parsed = EncodedVideo::Parse(Slice(bytes));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->frames.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(parsed->frames[i].payload, video->frames[i].payload);
    EXPECT_EQ(parsed->frames[i].type, video->frames[i].type);
  }
  // Truncated stream is rejected.
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(EncodedVideo::Parse(Slice(bytes)).ok());
}

TEST(CodecTest, MismatchedFrameSizeRejected) {
  auto encoder = Encoder::Create(SmallOptions());
  ASSERT_TRUE(encoder.ok());
  Frame wrong(64, 64);
  EXPECT_TRUE((*encoder)->Encode(wrong).status().IsInvalidArgument());
}

// ------------------------------------------------------------------- Tiles

TEST(CodecTest, TiledStreamRoundTrip) {
  EncoderOptions options = SmallOptions();
  options.tile_rows = 2;
  options.tile_cols = 4;
  auto frames = TestFrames(10);
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());
  auto decoded = DecodeVideo(*video);
  ASSERT_TRUE(decoded.ok());
  for (size_t i = 0; i < frames.size(); ++i) {
    auto psnr = LumaPsnr(frames[i], (*decoded)[i]);
    EXPECT_GT(*psnr, 28.0);
  }
}

TEST(CodecTest, TileOffsetsParse) {
  EncoderOptions options = SmallOptions();
  options.tile_rows = 2;
  options.tile_cols = 2;
  auto frames = TestFrames(1);
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());
  auto ranges = ParseTileOffsets(Slice(video->frames[0].payload), 4);
  ASSERT_TRUE(ranges.ok());
  ASSERT_EQ(ranges->size(), 4u);
  size_t total = 2 + 4 * 4;  // type + qp bytes + offset table
  for (auto [offset, length] : *ranges) {
    EXPECT_EQ(offset, total);
    total += length;
  }
  EXPECT_EQ(total, video->frames[0].payload.size());
}

TEST(CodecTest, PartialTileDecodeMatchesFullDecode) {
  // With motion-constrained tiles, decoding only tile T across a GOP must
  // produce the same pixels for T as a full decode — this independence is
  // exactly what VisualCloud's selective streaming relies on.
  EncoderOptions options = SmallOptions();
  options.tile_rows = 2;
  options.tile_cols = 2;
  options.motion_constrained_tiles = true;
  auto frames = TestFrames(8);
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());

  auto full_decoder = Decoder::Create(video->header);
  auto tile_decoder = Decoder::Create(video->header);
  ASSERT_TRUE(full_decoder.ok());
  ASSERT_TRUE(tile_decoder.ok());
  TileGrid grid = video->header.tile_grid();
  TileId target{1, 0};
  auto rect = grid.PixelRectOf(target, options.width, options.height, 16);
  ASSERT_TRUE(rect.ok());

  for (const auto& encoded : video->frames) {
    auto full = (*full_decoder)->Decode(Slice(encoded.payload));
    ASSERT_TRUE(full.ok());
    auto partial =
        (*tile_decoder)->DecodeTiles(Slice(encoded.payload), {target});
    ASSERT_TRUE(partial.ok());
    for (int y = rect->y; y < rect->y + rect->height; ++y) {
      for (int x = rect->x; x < rect->x + rect->width; ++x) {
        ASSERT_EQ(full->y(x, y), partial->y(x, y))
            << "tile pixels diverge at " << x << "," << y;
      }
    }
  }
}

TEST(CodecTest, UnconstrainedMotionBreaksTileIndependence) {
  // Sanity check of the ablation: without MCTS the codec may reference
  // pixels outside the tile, so this configuration exists and encodes fine
  // (the streaming layer simply must not use partial decode with it).
  EncoderOptions options = SmallOptions();
  options.tile_rows = 2;
  options.tile_cols = 2;
  options.motion_constrained_tiles = false;
  auto frames = TestFrames(6);
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());
  EXPECT_FALSE(video->header.motion_constrained_tiles());
  auto decoded = DecodeVideo(*video);
  ASSERT_TRUE(decoded.ok());
}

TEST(CodecTest, CorruptPayloadIsRejectedNotCrash) {
  auto frames = TestFrames(2);
  auto video = EncodeVideo(frames, SmallOptions());
  ASSERT_TRUE(video.ok());
  auto decoder = Decoder::Create(video->header);
  ASSERT_TRUE(decoder.ok());
  // Truncate the intra frame payload mid-tile.
  auto payload = video->frames[0].payload;
  payload.resize(payload.size() / 3);
  auto result = (*decoder)->Decode(Slice(payload));
  EXPECT_FALSE(result.ok());
}

TEST(CodecTest, EmptyPayloadRejected) {
  auto video = EncodeVideo(TestFrames(1), SmallOptions());
  auto decoder = Decoder::Create(video->header);
  EXPECT_FALSE((*decoder)->Decode(Slice()).ok());
}

// ------------------------------------------------------ Homomorphic ops

TEST(HomomorphicTest, ExtractTileMatchesPartialDecode) {
  EncoderOptions options = SmallOptions();
  options.tile_rows = 2;
  options.tile_cols = 2;
  auto frames = TestFrames(8);
  auto tiled = EncodeVideo(frames, options);
  ASSERT_TRUE(tiled.ok());

  TileGrid grid = tiled->header.tile_grid();
  TileId target{1, 1};
  auto rect = grid.PixelRectOf(target, options.width, options.height, 16);
  ASSERT_TRUE(rect.ok());

  auto extracted = ExtractTileStream(*tiled, target);
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  EXPECT_EQ(extracted->header.width, rect->width);
  EXPECT_EQ(extracted->header.height, rect->height);
  EXPECT_EQ(extracted->header.tile_grid().tile_count(), 1);

  // Decoding the standalone stream must give the same pixels as a partial
  // decode of the tile in the original stream — bit-exactly.
  auto standalone = DecodeVideo(*extracted);
  ASSERT_TRUE(standalone.ok());
  auto full_decoder = Decoder::Create(tiled->header);
  ASSERT_TRUE(full_decoder.ok());
  for (size_t f = 0; f < frames.size(); ++f) {
    auto full = (*full_decoder)->Decode(Slice(tiled->frames[f].payload));
    ASSERT_TRUE(full.ok());
    for (int y = 0; y < rect->height; ++y) {
      for (int x = 0; x < rect->width; ++x) {
        ASSERT_EQ((*standalone)[f].y(x, y),
                  full->y(rect->x + x, rect->y + y))
            << "frame " << f << " pixel " << x << "," << y;
      }
    }
  }
}

TEST(HomomorphicTest, ExtractValidation) {
  EncoderOptions options = SmallOptions();
  options.tile_rows = 2;
  options.tile_cols = 2;
  auto tiled = EncodeVideo(TestFrames(2), options);
  EXPECT_FALSE(ExtractTileStream(*tiled, {5, 0}).ok());
  options.motion_constrained_tiles = false;
  auto unconstrained = EncodeVideo(TestFrames(2), options);
  EXPECT_TRUE(ExtractTileStream(*unconstrained, {0, 0})
                  .status()
                  .IsNotSupported());
}

TEST(HomomorphicTest, MergeIsInverseOfExtract) {
  EncoderOptions options = SmallOptions();
  options.tile_rows = 2;
  options.tile_cols = 2;
  auto frames = TestFrames(6);
  auto tiled = EncodeVideo(frames, options);
  ASSERT_TRUE(tiled.ok());

  TileGrid grid = tiled->header.tile_grid();
  std::vector<EncodedVideo> parts;
  for (int i = 0; i < grid.tile_count(); ++i) {
    auto part = ExtractTileStream(*tiled, grid.TileAt(i));
    ASSERT_TRUE(part.ok());
    parts.push_back(std::move(*part));
  }
  auto merged = MergeTileStreams(parts, 2, 2, options.width, options.height);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged->frames.size(), tiled->frames.size());
  for (size_t f = 0; f < merged->frames.size(); ++f) {
    EXPECT_EQ(merged->frames[f].payload, tiled->frames[f].payload)
        << "merge(extract(x)) must be byte-identical to x";
  }
}

TEST(HomomorphicTest, MergeValidation) {
  EncoderOptions options = SmallOptions();  // 1x1 stream
  auto a = EncodeVideo(TestFrames(4), options);
  ASSERT_TRUE(a.ok());
  // Wrong part count.
  EXPECT_FALSE(MergeTileStreams({*a}, 2, 2, 128, 64).ok());
  // Dimensions that do not match the grid partition.
  EXPECT_FALSE(MergeTileStreams({*a, *a, *a, *a}, 2, 2, 128, 64).ok());
}

TEST(HomomorphicTest, ConcatenatePlaysBackToBack) {
  EncoderOptions options = SmallOptions();
  options.gop_length = 4;
  auto frames_a = TestFrames(4);
  // Second clip starts later in the scene for distinct content.
  SceneOptions scene_options;
  scene_options.width = 128;
  scene_options.height = 64;
  auto scene = NewVeniceScene(scene_options);
  std::vector<Frame> frames_b;
  for (int i = 20; i < 24; ++i) frames_b.push_back(scene->FrameAt(i));

  auto a = EncodeVideo(frames_a, options);
  auto b = EncodeVideo(frames_b, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto joined = ConcatenateStreams({*a, *b});
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->frames.size(), 8u);

  auto decoded = DecodeVideo(*joined);
  ASSERT_TRUE(decoded.ok());
  // Second half decodes to the second clip's content.
  auto reference = DecodeVideo(*b);
  ASSERT_TRUE(reference.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*decoded)[4 + i].y_plane(), (*reference)[i].y_plane());
  }
}

TEST(HomomorphicTest, ConcatenateValidation) {
  EncoderOptions options = SmallOptions();
  auto a = EncodeVideo(TestFrames(4), options);
  EncoderOptions other = SmallOptions();
  other.width = 64;
  other.height = 64;
  SceneOptions scene_options;
  scene_options.width = 64;
  scene_options.height = 64;
  auto small_scene = NewVeniceScene(scene_options);
  auto b = EncodeVideo(RenderScene(*small_scene, 4), other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(ConcatenateStreams({*a, *b}).ok());
  EXPECT_FALSE(ConcatenateStreams({}).ok());
}

// ------------------------------------------------------------ Rate control

TEST(CodecTest, FramePayloadCarriesQp) {
  auto frames = TestFrames(2);
  EncoderOptions options = SmallOptions();
  options.qp = 33;
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());
  for (const auto& frame : video->frames) {
    auto qp = ParseFrameQp(Slice(frame.payload));
    ASSERT_TRUE(qp.ok());
    EXPECT_EQ(*qp, 33);
  }
}

TEST(CodecTest, RateControlTracksTarget) {
  auto frames = TestFrames(48);
  EncoderOptions options = SmallOptions();
  options.gop_length = 8;
  options.fps = 8.0;
  options.qp = 28;  // starting point; control adapts around it
  options.target_bitrate_bps = 120e3;
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());
  double seconds = frames.size() / options.fps;
  double achieved_bps = video->size_bytes() * 8.0 / seconds;
  EXPECT_NEAR(achieved_bps, options.target_bitrate_bps,
              0.35 * options.target_bitrate_bps)
      << "rate control should land near the target";
  // The decoder follows the per-frame QP changes bit-exactly.
  auto decoded = DecodeVideo(*video);
  ASSERT_TRUE(decoded.ok());
}

TEST(CodecTest, RateControlVariesQpAcrossFrames) {
  auto frames = TestFrames(24);
  EncoderOptions options = SmallOptions();
  options.gop_length = 8;
  options.fps = 8.0;
  options.target_bitrate_bps = 60e3;  // tight: forces adaptation
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());
  int min_qp = 99, max_qp = -1;
  for (const auto& frame : video->frames) {
    int qp = *ParseFrameQp(Slice(frame.payload));
    min_qp = std::min(min_qp, qp);
    max_qp = std::max(max_qp, qp);
  }
  EXPECT_LT(min_qp, max_qp) << "controller should move the QP";
}

TEST(CodecTest, RateControlDecoderMatchesEncoderRecon) {
  auto frames = TestFrames(20);
  EncoderOptions options = SmallOptions();
  options.target_bitrate_bps = 100e3;
  auto encoder = Encoder::Create(options);
  ASSERT_TRUE(encoder.ok());
  auto decoder = Decoder::Create((*encoder)->header());
  ASSERT_TRUE(decoder.ok());
  for (const Frame& frame : frames) {
    auto encoded = (*encoder)->Encode(frame);
    ASSERT_TRUE(encoded.ok());
    auto decoded = (*decoder)->Decode(Slice(encoded->payload));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->y_plane(), (*encoder)->reconstructed().y_plane());
  }
}

TEST(CodecTest, NegativeTargetBitrateRejected) {
  EncoderOptions options = SmallOptions();
  options.target_bitrate_bps = -5;
  EXPECT_FALSE(options.Validate().ok());
}

// ----------------------------------------------------------------- Quality

TEST(QualityTest, DefaultLadderIsOrdered) {
  QualityLadder ladder = DefaultQualityLadder();
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_LT(ladder[0].qp, ladder[1].qp);
  EXPECT_LT(ladder[1].qp, ladder[2].qp);
}

TEST(QualityTest, MakeLadderSpansRange) {
  auto ladder = MakeQualityLadder(5, 10, 42);
  ASSERT_TRUE(ladder.ok());
  ASSERT_EQ(ladder->size(), 5u);
  EXPECT_EQ((*ladder)[0].qp, 10);
  EXPECT_EQ((*ladder)[4].qp, 42);
  for (size_t i = 1; i < ladder->size(); ++i) {
    EXPECT_GE((*ladder)[i].qp, (*ladder)[i - 1].qp);
  }
  EXPECT_FALSE(MakeQualityLadder(0).ok());
  EXPECT_FALSE(MakeQualityLadder(3, 40, 10).ok());
}

// ------------------------------------------------- Motion search kernels

TEST(MotionTest, BlockSadBoundedMatchesUnbounded) {
  Random rng(21);
  constexpr int kW = 64, kH = 48;
  std::vector<uint8_t> a(kW * kH), b(kW * kH);
  for (auto& px : a) px = static_cast<uint8_t>(rng.Uniform(256));
  for (auto& px : b) px = static_cast<uint8_t>(rng.Uniform(256));
  PlaneView pa{a.data(), kW}, pb{b.data(), kW};
  for (int trial = 0; trial < 50; ++trial) {
    int ax = static_cast<int>(rng.Uniform(kW - 16));
    int ay = static_cast<int>(rng.Uniform(kH - 16));
    int bx = static_cast<int>(rng.Uniform(kW - 16));
    int by = static_cast<int>(rng.Uniform(kH - 16));
    uint32_t exact = BlockSad(pa, ax, ay, pb, bx, by, 16);
    // A generous limit never trips the early exit.
    EXPECT_EQ(BlockSadBounded(pa, ax, ay, pb, bx, by, 16, UINT32_MAX), exact);
    // Any limit: the bounded kernel is exact below the limit and reports at
    // least the limit once it bails.
    uint32_t limit = static_cast<uint32_t>(rng.Uniform(2 * exact + 2));
    uint32_t bounded = BlockSadBounded(pa, ax, ay, pb, bx, by, 16, limit);
    if (exact < limit) {
      EXPECT_EQ(bounded, exact);
    } else {
      EXPECT_GE(bounded, limit);
    }
  }
}

TEST(MotionTest, RefineMotionFindsSeededShift) {
  Random rng(22);
  constexpr int kW = 96, kH = 64;
  std::vector<uint8_t> reference(kW * kH), current(kW * kH, 0);
  for (auto& px : reference) px = static_cast<uint8_t>(rng.Uniform(256));
  // current(x, y) = reference(x + 3, y + 2): the block at (32, 24) matches
  // the reference exactly at displacement (3, 2).
  for (int y = 0; y < kH - 2; ++y) {
    for (int x = 0; x < kW - 3; ++x) {
      current[y * kW + x] = reference[(y + 2) * kW + x + 3];
    }
  }
  PlaneView cur{current.data(), kW}, ref{reference.data(), kW};
  MotionBounds bounds{0, 0, kW, kH};

  // Exact seed: accepted with a single evaluation.
  uint32_t sad = 0;
  MotionVector mv = RefineMotion(cur, ref, 32, 24, 16, 16, bounds,
                                 MotionVector{3, 2}, /*good_enough_sad=*/0,
                                 &sad);
  EXPECT_EQ(mv, (MotionVector{3, 2}));
  EXPECT_EQ(sad, 0u);

  // Seed one step off: the small-diamond descent recovers the optimum.
  mv = RefineMotion(cur, ref, 32, 24, 16, 16, bounds, MotionVector{2, 2},
                    /*good_enough_sad=*/0, &sad);
  EXPECT_EQ(mv, (MotionVector{3, 2}));
  EXPECT_EQ(sad, 0u);
}

TEST(MotionTest, ScratchDoesNotChangeSearchResults) {
  Random rng(23);
  constexpr int kW = 96, kH = 64;
  std::vector<uint8_t> a(kW * kH), b(kW * kH);
  for (auto& px : a) px = static_cast<uint8_t>(rng.Uniform(256));
  for (auto& px : b) px = static_cast<uint8_t>(rng.Uniform(256));
  PlaneView cur{a.data(), kW}, ref{b.data(), kW};
  MotionBounds bounds{0, 0, kW, kH};
  MotionSearchScratch scratch;
  for (int trial = 0; trial < 10; ++trial) {
    int x = 16 * static_cast<int>(rng.Uniform(kW / 16 - 1));
    int y = 16 * static_cast<int>(rng.Uniform(kH / 16 - 1));
    uint32_t plain_sad = 0, memo_sad = 0;
    MotionVector plain =
        SearchMotion(cur, ref, x, y, 16, 16, bounds, &plain_sad, nullptr);
    MotionVector memo =
        SearchMotion(cur, ref, x, y, 16, 16, bounds, &memo_sad, &scratch);
    EXPECT_EQ(plain, memo) << "trial " << trial;
    EXPECT_EQ(plain_sad, memo_sad) << "trial " << trial;
  }
  EXPECT_GT(scratch.sad_evals, 0u);
}

TEST(TransformTest, InverseDctSparseMatchesDense) {
  Random rng(24);
  double qstep = QStepForQp(30);
  for (int trial = 0; trial < 100; ++trial) {
    // Production-shaped input: a few nonzero integer levels, dequantized.
    LevelBlock levels{};
    int nonzero = 1 + static_cast<int>(rng.Uniform(kInverseDctSparseThreshold));
    for (int placed = 0; placed < nonzero;) {
      int pos = static_cast<int>(rng.Uniform(kBlockPixels));
      if (levels[pos] != 0) continue;
      levels[pos] = static_cast<int32_t>(rng.Uniform(20)) - 10;
      if (levels[pos] != 0) ++placed;
    }
    int count = 0;
    for (int32_t level : levels) count += level != 0;
    CoeffBlock coeffs;
    Dequantize(levels, qstep, &coeffs);
    ResidualBlock dense, sparse;
    InverseDct(coeffs, &dense);
    InverseDctSparse(coeffs, count, &sparse);
    for (int i = 0; i < kBlockPixels; ++i) {
      // Different float summation order: equal up to one rounding step.
      EXPECT_NEAR(sparse[i], dense[i], 1) << "trial " << trial;
    }
  }
}

// ------------------------------------------------- Motion-analysis reuse

TEST(CodecTest, HintedStreamDecodesBitExactly) {
  // Hints change how the encoder searches, not the bitstream contract: a
  // hinted stream must decode to exactly the hinted encoder's recon.
  auto frames = TestFrames(12);
  MotionHints hints;
  EncoderOptions reference = SmallOptions();
  reference.qp = 14;
  reference.capture_hints = &hints;
  ASSERT_TRUE(EncodeVideo(frames, reference).ok());
  ASSERT_EQ(hints.frames.size(), frames.size());

  EncoderOptions coarse = SmallOptions();
  coarse.qp = 35;
  coarse.reuse_hints = &hints;
  auto encoder = Encoder::Create(coarse);
  ASSERT_TRUE(encoder.ok());
  auto decoder = Decoder::Create((*encoder)->header());
  ASSERT_TRUE(decoder.ok());
  for (const Frame& frame : frames) {
    auto encoded = (*encoder)->Encode(frame);
    ASSERT_TRUE(encoded.ok());
    auto decoded = (*decoder)->Decode(Slice(encoded->payload));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->y_plane(), (*encoder)->reconstructed().y_plane());
    EXPECT_EQ(decoded->u_plane(), (*encoder)->reconstructed().u_plane());
    EXPECT_EQ(decoded->v_plane(), (*encoder)->reconstructed().v_plane());
  }
}

TEST(CodecTest, HintedEncodeQualityMatchesUnhinted) {
  auto frames = TestFrames(12);
  MotionHints hints;
  EncoderOptions reference = SmallOptions();
  reference.qp = 14;
  reference.capture_hints = &hints;
  ASSERT_TRUE(EncodeVideo(frames, reference).ok());

  for (int qp : {28, 42}) {
    EncoderOptions options = SmallOptions();
    options.qp = qp;
    auto unhinted = EncodeVideo(frames, options);
    options.reuse_hints = &hints;
    auto hinted = EncodeVideo(frames, options);
    ASSERT_TRUE(unhinted.ok());
    ASSERT_TRUE(hinted.ok());
    auto unhinted_frames = DecodeVideo(*unhinted);
    auto hinted_frames = DecodeVideo(*hinted);
    ASSERT_TRUE(unhinted_frames.ok());
    ASSERT_TRUE(hinted_frames.ok());
    double unhinted_psnr = 0, hinted_psnr = 0;
    for (size_t i = 0; i < frames.size(); ++i) {
      unhinted_psnr += *LumaPsnr(frames[i], (*unhinted_frames)[i]);
      hinted_psnr += *LumaPsnr(frames[i], (*hinted_frames)[i]);
    }
    unhinted_psnr /= frames.size();
    hinted_psnr /= frames.size();
    EXPECT_NEAR(hinted_psnr, unhinted_psnr, 0.1)
        << "qp " << qp << ": analysis reuse may not cost visible quality";
  }
}

TEST(CodecTest, MismatchedHintGeometryFallsBack) {
  // Hints captured from a different stream shape are ignored entirely: the
  // hinted encode is byte-identical to the unhinted one.
  auto frames = TestFrames(8);
  MotionHints hints;
  EncoderOptions other_shape = SmallOptions();
  other_shape.width = 64;
  other_shape.height = 64;
  other_shape.capture_hints = &hints;
  auto other_frames = TestFrames(8, 64, 64);
  ASSERT_TRUE(EncodeVideo(other_frames, other_shape).ok());

  EncoderOptions options = SmallOptions();
  auto unhinted = EncodeVideo(frames, options);
  options.reuse_hints = &hints;
  auto hinted = EncodeVideo(frames, options);
  ASSERT_TRUE(unhinted.ok());
  ASSERT_TRUE(hinted.ok());
  ASSERT_EQ(unhinted->frames.size(), hinted->frames.size());
  for (size_t i = 0; i < unhinted->frames.size(); ++i) {
    EXPECT_EQ(unhinted->frames[i].payload, hinted->frames[i].payload)
        << "frame " << i;
  }
}

TEST(CodecTest, ShortHintsFallBackPerFrame) {
  // Hints covering fewer frames than the encode: hinted frames reuse, later
  // frames fall back to the full search, and the stream stays consistent.
  auto frames = TestFrames(10);
  MotionHints hints;
  EncoderOptions reference = SmallOptions();
  reference.capture_hints = &hints;
  {
    auto encoder = Encoder::Create(reference);
    ASSERT_TRUE(encoder.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*encoder)->Encode(frames[i]).ok());
    }
  }
  ASSERT_EQ(hints.frames.size(), 5u);

  EncoderOptions options = SmallOptions();
  options.qp = 35;
  options.reuse_hints = &hints;
  auto encoder = Encoder::Create(options);
  ASSERT_TRUE(encoder.ok());
  auto decoder = Decoder::Create((*encoder)->header());
  ASSERT_TRUE(decoder.ok());
  for (const Frame& frame : frames) {
    auto encoded = (*encoder)->Encode(frame);
    ASSERT_TRUE(encoded.ok());
    auto decoded = (*decoder)->Decode(Slice(encoded->payload));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->y_plane(), (*encoder)->reconstructed().y_plane());
  }
}

// ----------------------------------------- Parameterized RD property sweep

struct RdCase {
  std::string scene;
  int qp;
};

class RdSweepTest : public ::testing::TestWithParam<RdCase> {};

TEST_P(RdSweepTest, DecodeQualityScalesWithQp) {
  const RdCase& param = GetParam();
  SceneOptions scene_options;
  scene_options.width = 128;
  scene_options.height = 64;
  auto scene = MakeScene(param.scene, scene_options);
  ASSERT_TRUE(scene.ok());
  auto frames = RenderScene(**scene, 4);

  EncoderOptions options = SmallOptions();
  options.qp = param.qp;
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());
  auto decoded = DecodeVideo(*video);
  ASSERT_TRUE(decoded.ok());

  double min_expected = param.qp <= 14 ? 34.0 : (param.qp <= 28 ? 27.0 : 20.0);
  for (size_t i = 0; i < frames.size(); ++i) {
    auto psnr = LumaPsnr(frames[i], (*decoded)[i]);
    ASSERT_TRUE(psnr.ok());
    EXPECT_GT(*psnr, min_expected)
        << param.scene << " qp=" << param.qp << " frame " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenesAndQps, RdSweepTest,
    ::testing::Values(RdCase{"timelapse", 10}, RdCase{"timelapse", 28},
                      RdCase{"timelapse", 42}, RdCase{"venice", 10},
                      RdCase{"venice", 28}, RdCase{"venice", 42},
                      RdCase{"coaster", 10}, RdCase{"coaster", 28},
                      RdCase{"coaster", 42}),
    [](const ::testing::TestParamInfo<RdCase>& info) {
      return info.param.scene + "_qp" + std::to_string(info.param.qp);
    });

// -------------------------------------------------------------------- SIMD
//
// The vector kernels must be *bit-identical* to their scalar fallbacks —
// not merely close: the decoder mirrors the encoder's reconstruction
// arithmetic, so any cross-ISA divergence would make streams encoded on one
// machine drift on another. The runtime kill-switch lets one binary run
// both paths. On machines where no SIMD path is compiled in or usable, both
// runs take the scalar path and the tests pass vacuously.

/// Toggles the SIMD kill-switch (and optionally the tier cap) for a scope,
/// restoring the prior state.
class ScopedSimd {
 public:
  explicit ScopedSimd(bool enabled)
      : previous_enabled_(simd::Enabled()), previous_cap_(simd::LevelCap()) {
    simd::SetEnabled(enabled);
  }
  ScopedSimd(bool enabled, simd::Level cap) : ScopedSimd(enabled) {
    simd::SetLevelCap(cap);
  }
  ~ScopedSimd() {
    simd::SetEnabled(previous_enabled_);
    simd::SetLevelCap(previous_cap_);
  }

 private:
  bool previous_enabled_;
  simd::Level previous_cap_;
};

/// The distinct vector tiers this binary + host can actually run (e.g.
/// {sse2, avx2} on a modern x86), so the bit-exactness tests prove *every*
/// dispatchable path equals scalar, not just the strongest one.
std::vector<simd::Level> VectorTiers() {
  std::vector<simd::Level> tiers;
  for (simd::Level cap :
       {simd::Level::kSse2, simd::Level::kAvx2, simd::Level::kNeon}) {
    ScopedSimd on(true, cap);
    simd::Level active = simd::ActiveLevel();
    if (active > simd::Level::kScalar &&
        (tiers.empty() || tiers.back() != active)) {
      tiers.push_back(active);
    }
  }
  return tiers;
}

TEST(SimdTest, TransformKernelsMatchScalarBitExactly) {
  Random rng(501);
  for (int trial = 0; trial < 300; ++trial) {
    ResidualBlock residual;
    if (trial < 4) {
      // Saturation edges: extreme residuals and exact corner values.
      int16_t v = trial % 2 == 0 ? int16_t{255} : int16_t{-255};
      residual.fill(v);
    } else {
      for (auto& v : residual) {
        v = static_cast<int16_t>(static_cast<int>(rng.Uniform(511)) - 255);
      }
    }
    const double qstep = QStepForQp(static_cast<int>(rng.Uniform(52)));

    CoeffBlock coeffs_scalar;
    LevelBlock levels_scalar;
    CoeffBlock dq_scalar;
    ResidualBlock out_scalar;
    {
      ScopedSimd off(false);
      ForwardDct(residual, &coeffs_scalar);
      Quantize(coeffs_scalar, qstep, &levels_scalar);
      Dequantize(levels_scalar, qstep, &dq_scalar);
      InverseDct(dq_scalar, &out_scalar);
    }
    for (simd::Level tier : VectorTiers()) {
      CoeffBlock coeffs_simd, dq_simd;
      LevelBlock levels_simd;
      ResidualBlock out_simd;
      ScopedSimd on(true, tier);
      ForwardDct(residual, &coeffs_simd);
      Quantize(coeffs_simd, qstep, &levels_simd);
      Dequantize(levels_simd, qstep, &dq_simd);
      InverseDct(dq_simd, &out_simd);
      // Exact equality, including on the doubles: every SIMD tier performs
      // the same IEEE operations in the same per-element order.
      const char* name = simd::LevelName(tier);
      ASSERT_EQ(coeffs_scalar, coeffs_simd) << "trial " << trial << " " << name;
      ASSERT_EQ(levels_scalar, levels_simd) << "trial " << trial << " " << name;
      ASSERT_EQ(dq_scalar, dq_simd) << "trial " << trial << " " << name;
      ASSERT_EQ(out_scalar, out_simd) << "trial " << trial << " " << name;
    }
  }
}

TEST(SimdTest, SparseInverseDctMatchesScalarBitExactly) {
  Random rng(502);
  for (int trial = 0; trial < 200; ++trial) {
    // Sparse blocks as the decoder sees them: a handful of nonzero levels.
    LevelBlock levels{};
    int nonzero = 1 + static_cast<int>(rng.Uniform(kInverseDctSparseThreshold));
    for (int i = 0; i < nonzero; ++i) {
      levels[rng.Uniform(kBlockPixels)] =
          static_cast<int32_t>(rng.Uniform(400)) - 200;
    }
    const double qstep = QStepForQp(28);
    CoeffBlock coeffs;
    Dequantize(levels, qstep, &coeffs);

    ResidualBlock out_scalar;
    {
      ScopedSimd off(false);
      InverseDctSparse(coeffs, nonzero, &out_scalar);
    }
    for (simd::Level tier : VectorTiers()) {
      ResidualBlock out_simd;
      ScopedSimd on(true, tier);
      InverseDctSparse(coeffs, nonzero, &out_simd);
      ASSERT_EQ(out_scalar, out_simd)
          << "trial " << trial << " " << simd::LevelName(tier);
    }
  }
}

TEST(SimdTest, BlockSadMatchesScalarExactly) {
  Random rng(503);
  constexpr int kW = 64, kH = 48;
  std::vector<uint8_t> a(kW * kH), b(kW * kH);
  for (auto& v : a) v = static_cast<uint8_t>(rng.Uniform(256));
  for (auto& v : b) v = static_cast<uint8_t>(rng.Uniform(256));
  PlaneView pa{a.data(), kW}, pb{b.data(), kW};

  for (int trial = 0; trial < 500; ++trial) {
    const int size = trial % 2 == 0 ? 16 : 8;
    const int ax = static_cast<int>(rng.Uniform(kW - size));
    const int ay = static_cast<int>(rng.Uniform(kH - size));
    const int bx = static_cast<int>(rng.Uniform(kW - size));
    const int by = static_cast<int>(rng.Uniform(kH - size));
    const uint32_t limit = rng.Uniform(2) == 0
                               ? 1 + rng.Uniform(size * size * 255u)
                               : UINT32_MAX;
    uint32_t sad_scalar, bounded_scalar, sad_simd, bounded_simd;
    {
      ScopedSimd off(false);
      sad_scalar = BlockSad(pa, ax, ay, pb, bx, by, size);
      bounded_scalar = BlockSadBounded(pa, ax, ay, pb, bx, by, size, limit);
    }
    {
      ScopedSimd on(true);
      sad_simd = BlockSad(pa, ax, ay, pb, bx, by, size);
      bounded_simd = BlockSadBounded(pa, ax, ay, pb, bx, by, size, limit);
    }
    ASSERT_EQ(sad_scalar, sad_simd) << "trial " << trial;
    // Both paths fold a full row before checking the limit, so even the
    // abandoned partial sums agree exactly.
    ASSERT_EQ(bounded_scalar, bounded_simd) << "trial " << trial;
  }
}

TEST(SimdTest, FullEncodeIsBitIdenticalToScalar) {
  auto frames = TestFrames(6);
  EncoderOptions options = SmallOptions();
  options.tile_rows = 2;
  options.tile_cols = 2;

  std::vector<uint8_t> bytes_scalar;
  {
    ScopedSimd off(false);
    auto video = EncodeVideo(frames, options);
    ASSERT_TRUE(video.ok());
    bytes_scalar = video->Serialize();
  }
  for (simd::Level tier : VectorTiers()) {
    ScopedSimd on(true, tier);
    auto video = EncodeVideo(frames, options);
    ASSERT_TRUE(video.ok());
    EXPECT_EQ(bytes_scalar, video->Serialize())
        << "the " << simd::LevelName(tier)
        << " tier and scalar encodes must produce identical streams";
  }
}

// ------------------------------------------------------- Huffman profile

std::vector<CodedBlock> RandomCodedBlocks(Random* rng, int count,
                                          double density) {
  std::vector<CodedBlock> blocks(count);
  for (auto& block : blocks) {
    block.levels.fill(0);
    for (int i = 0; i < kBlockPixels; ++i) {
      if (rng->UniformDouble(0, 1) < density) {
        int32_t level = static_cast<int32_t>(rng->Uniform(2000)) - 1000;
        if (level == 0) level = 1;
        block.levels[i] = level;
        ++block.nonzero;
      }
    }
  }
  return blocks;
}

TEST(HuffmanTest, BlocksRoundTripExactly) {
  Random rng(601);
  for (int trial = 0; trial < 20; ++trial) {
    // Mix sparse (typical) and dense (stress) payloads, including all-zero
    // blocks, which are the common case for well-predicted inter content.
    auto blocks = RandomCodedBlocks(&rng, 40, trial % 3 == 0 ? 0.6 : 0.08);
    blocks[0] = CodedBlock{};  // all-zero block

    HuffmanBlockEncoder encoder;
    for (const CodedBlock& block : blocks) encoder.CountBlock(block);
    encoder.Finalize();

    BitWriter writer;
    encoder.WriteTable(&writer);
    for (const CodedBlock& block : blocks) encoder.WriteBlock(block, &writer);
    auto bytes = writer.Finish();

    BitReader reader{Slice(bytes)};
    HuffmanBlockDecoder decoder;
    ASSERT_TRUE(decoder.Init(&reader).ok()) << "trial " << trial;
    for (size_t i = 0; i < blocks.size(); ++i) {
      LevelBlock out;
      int nonzero = -1;
      ASSERT_TRUE(decoder.DecodeBlock(&reader, &out, &nonzero).ok())
          << "trial " << trial << " block " << i;
      ASSERT_EQ(nonzero, blocks[i].nonzero);
      if (blocks[i].nonzero == 0) {
        for (int32_t v : out) ASSERT_EQ(v, 0);
      } else {
        ASSERT_EQ(out, blocks[i].levels) << "trial " << trial << " blk " << i;
      }
    }
  }
}

TEST(HuffmanTest, ExtremeLevelsUseEscapeAndRoundTrip) {
  // Levels beyond 16 magnitude bits must take the escape token.
  std::vector<CodedBlock> blocks(2);
  blocks[0].levels.fill(0);
  blocks[0].levels[0] = INT32_MAX;
  blocks[0].levels[63] = INT32_MIN + 1;
  blocks[0].nonzero = 2;
  blocks[1].levels.fill(0);
  blocks[1].levels[5] = -70000;
  blocks[1].nonzero = 1;

  HuffmanBlockEncoder encoder;
  for (const CodedBlock& block : blocks) encoder.CountBlock(block);
  encoder.Finalize();
  BitWriter writer;
  encoder.WriteTable(&writer);
  for (const CodedBlock& block : blocks) encoder.WriteBlock(block, &writer);
  auto bytes = writer.Finish();

  BitReader reader{Slice(bytes)};
  HuffmanBlockDecoder decoder;
  ASSERT_TRUE(decoder.Init(&reader).ok());
  for (const CodedBlock& expected : blocks) {
    LevelBlock out;
    ASSERT_TRUE(decoder.DecodeBlock(&reader, &out).ok());
    EXPECT_EQ(out, expected.levels);
  }
}

TEST(HuffmanTest, RejectsOversizedTableDelta) {
  // A symbol delta of 2^63 would wrap negative through an int64 cast and,
  // unless bounded before the cast, pass the upper-bound symbol check and
  // poison the decode LUT with negative symbols (an OOB write primitive in
  // DecodeBlock). Init must reject it as corruption instead.
  for (uint64_t delta : {uint64_t{1} << 63, uint64_t{0} - 2,
                         static_cast<uint64_t>(kHuffmanAlphabetSize)}) {
    BitWriter writer;
    writer.WriteUE(0);  // one symbol present
    writer.WriteUE(delta);
    writer.WriteBits(3, 4);  // code length, never reached
    auto bytes = writer.Finish();

    BitReader reader{Slice(bytes)};
    HuffmanBlockDecoder decoder;
    EXPECT_TRUE(decoder.Init(&reader).IsCorruption()) << "delta " << delta;
  }
}

TEST(HuffmanTest, CostAccountingIsExact) {
  // expgolomb_bits() must equal what EncodeLevelBlock actually writes, and
  // huffman_bits() what WriteTable+WriteBlock write — the fallback decision
  // rests on both being exact.
  Random rng(602);
  auto blocks = RandomCodedBlocks(&rng, 60, 0.1);
  HuffmanBlockEncoder encoder;
  BitWriter eg_writer;
  for (const CodedBlock& block : blocks) {
    encoder.CountBlock(block);
    if (block.nonzero == 0) {
      eg_writer.WriteUE(0);
    } else {
      EncodeLevelBlock(block.levels, &eg_writer);
    }
  }
  const bool use_huffman = encoder.Finalize();
  EXPECT_EQ(encoder.expgolomb_bits(), eg_writer.bit_count());

  BitWriter hf_writer;
  encoder.WriteTable(&hf_writer);
  for (const CodedBlock& block : blocks) encoder.WriteBlock(block, &hf_writer);
  EXPECT_EQ(encoder.huffman_bits(), hf_writer.bit_count());
  EXPECT_EQ(use_huffman,
            encoder.huffman_bits() < encoder.expgolomb_bits());
}

TEST(HuffmanTest, ProfileDecodesIdenticallyAndNeverCostsMore) {
  auto frames = TestFrames(8);
  EncoderOptions eg_options = SmallOptions();
  EncoderOptions hf_options = SmallOptions();
  hf_options.entropy_profile = EntropyProfile::kHuffman;

  auto eg_video = EncodeVideo(frames, eg_options);
  auto hf_video = EncodeVideo(frames, hf_options);
  ASSERT_TRUE(eg_video.ok());
  ASSERT_TRUE(hf_video.ok());
  EXPECT_TRUE(hf_video->header.huffman_entropy());
  EXPECT_FALSE(eg_video->header.huffman_entropy());

  // Entropy coding is lossless and the analysis never looks at it, so the
  // reconstructions are bit-identical across profiles...
  auto eg_frames = DecodeVideo(*eg_video);
  auto hf_frames = DecodeVideo(*hf_video);
  ASSERT_TRUE(eg_frames.ok());
  ASSERT_TRUE(hf_frames.ok());
  ASSERT_EQ(eg_frames->size(), hf_frames->size());
  for (size_t i = 0; i < eg_frames->size(); ++i) {
    EXPECT_EQ((*eg_frames)[i].y_plane(), (*hf_frames)[i].y_plane());
    EXPECT_EQ((*eg_frames)[i].u_plane(), (*hf_frames)[i].u_plane());
    EXPECT_EQ((*eg_frames)[i].v_plane(), (*hf_frames)[i].v_plane());
  }
  // ...and the per-payload Exp-Golomb fallback caps the cost at one profile
  // bit per tile payload.
  size_t tile_payloads = hf_video->frames.size();  // 1×1 grid
  EXPECT_LE(hf_video->size_bytes(),
            eg_video->size_bytes() + (tile_payloads * 7) / 8 + 1)
      << "Huffman profile must never lose more than the profile bits";
  // On real content it should win outright.
  EXPECT_LT(hf_video->size_bytes(), eg_video->size_bytes());
}

TEST(HuffmanTest, DecoderMatchesEncoderReconstruction) {
  auto frames = TestFrames(10);
  EncoderOptions options = SmallOptions();
  options.entropy_profile = EntropyProfile::kHuffman;
  options.tile_rows = 2;
  options.tile_cols = 2;
  auto encoder = Encoder::Create(options);
  ASSERT_TRUE(encoder.ok());
  auto decoder = Decoder::Create((*encoder)->header());
  ASSERT_TRUE(decoder.ok());
  for (const Frame& frame : frames) {
    auto encoded = (*encoder)->Encode(frame);
    ASSERT_TRUE(encoded.ok());
    auto decoded = (*decoder)->Decode(Slice(encoded->payload));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->y_plane(), (*encoder)->reconstructed().y_plane());
    ASSERT_EQ(decoded->u_plane(), (*encoder)->reconstructed().u_plane());
    ASSERT_EQ(decoded->v_plane(), (*encoder)->reconstructed().v_plane());
  }
}

TEST(HuffmanTest, HomomorphicOpsWorkOnHuffmanStreams) {
  auto frames = TestFrames(6, 128, 64);
  EncoderOptions options = SmallOptions();
  options.entropy_profile = EntropyProfile::kHuffman;
  options.tile_rows = 2;
  options.tile_cols = 2;
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());

  // Extract every tile, then merge them back: byte-identical payloads.
  std::vector<EncodedVideo> parts;
  TileGrid grid = video->header.tile_grid();
  for (int i = 0; i < grid.tile_count(); ++i) {
    auto part = ExtractTileStream(*video, grid.TileAt(i));
    ASSERT_TRUE(part.ok());
    EXPECT_TRUE(part->header.huffman_entropy());
    auto decoded = DecodeVideo(*part);
    ASSERT_TRUE(decoded.ok()) << "extracted Huffman tile must decode";
    parts.push_back(std::move(*part));
  }
  auto merged = MergeTileStreams(parts, 2, 2, 128, 64);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->Serialize(), video->Serialize());
}

TEST(HuffmanTest, MergeRejectsMixedEntropyProfiles) {
  auto frames = TestFrames(4, 64, 32);
  EncoderOptions options = SmallOptions();
  options.width = 64;
  options.height = 32;
  EncoderOptions huffman_options = options;
  huffman_options.entropy_profile = EntropyProfile::kHuffman;

  auto left = EncodeVideo(frames, options);
  auto right = EncodeVideo(frames, huffman_options);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  // A Huffman tile payload is not decodable under a non-Huffman header (and
  // vice versa), so the merge must refuse to mix them.
  auto merged = MergeTileStreams({*left, *right}, 1, 2, 128, 32);
  EXPECT_TRUE(merged.status().IsInvalidArgument());
}

TEST(HuffmanTest, TruncatedHuffmanStreamFailsCleanly) {
  auto frames = TestFrames(2);
  EncoderOptions options = SmallOptions();
  options.entropy_profile = EntropyProfile::kHuffman;
  auto video = EncodeVideo(frames, options);
  ASSERT_TRUE(video.ok());
  auto decoder = Decoder::Create(video->header);
  ASSERT_TRUE(decoder.ok());
  auto& payload = video->frames[0].payload;
  for (size_t keep : {payload.size() / 4, payload.size() / 2,
                      payload.size() - 1}) {
    std::vector<uint8_t> truncated(payload.begin(),
                                   payload.begin() + keep);
    auto fresh = Decoder::Create(video->header);
    ASSERT_TRUE(fresh.ok());
    auto decoded = (*fresh)->Decode(Slice(truncated));
    EXPECT_FALSE(decoded.ok()) << "kept " << keep << " bytes";
  }
}

}  // namespace
}  // namespace vc
