#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/random.h"
#include "query/algebra.h"
#include "view/definition.h"

// Deterministic fuzzing of the VCVIEW materialized-view definition parser:
// a valid, fully-maintained definition is truncated at every length,
// peppered with seeded bit flips, rewritten line-by-line, and
// pattern-filled, and every mutant goes through ParseViewDefinition. The
// contract is totality: every input either parses or returns a clean error
// Status; crashes, hangs, and out-of-bounds access (the ASan/UBSan CI leg
// runs this suite) are the failures. Mutants that do parse must
// additionally be a fixed point — re-serializing and re-parsing yields the
// same definition — because the maintainer persists exactly what
// ParseViewDefinition accepts.

namespace vc {
namespace {

std::string Fixture() {
  ViewDefinition def;
  def.name = "periph";
  def.source = "demo";
  def.source_version = 3;
  def.segments = 4;
  def.query = Query::Scan("demo")
                  .Viewport(kPi, kPi / 2, DegToRad(90), DegToRad(60))
                  .QualityFloor("high")
                  .Degrade("low")
                  .Encode()
                  .Store("periph")
                  .ToString();
  return def.Serialize();
}

void DriveParser(const std::string& text) {
  auto parsed = ParseViewDefinition(Slice(text));
  if (!parsed.ok()) return;
  // Whatever parsed was validated; its serialized form must re-parse to
  // the identical definition (canonical fixed point).
  std::string out = parsed->Serialize();
  auto again = ParseViewDefinition(Slice(out));
  ASSERT_TRUE(again.ok()) << "re-serialized definition failed to re-parse";
  EXPECT_EQ(again->Serialize(), out);
}

TEST(ViewFuzzTest, TruncationsFailCleanly) {
  std::string text = Fixture();
  for (size_t keep = 0; keep <= text.size(); ++keep) {
    DriveParser(text.substr(0, keep));
  }
}

TEST(ViewFuzzTest, BitFlipsFailCleanly) {
  std::string text = Fixture();
  Random rng(20260808);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutant = text;
    int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < flips; ++i) {
      size_t bit = rng.Uniform(static_cast<uint32_t>(mutant.size() * 8));
      mutant[bit / 8] = static_cast<char>(
          static_cast<uint8_t>(mutant[bit / 8]) ^ (1u << (bit % 8)));
    }
    DriveParser(mutant);
  }
}

TEST(ViewFuzzTest, LineSurgeryFailsCleanly) {
  // Structured mutations the bit flipper rarely finds: whole lines deleted,
  // duplicated, or swapped, and single tokens replaced with adversarial
  // values (overflow, negatives, keywords and query fragments in value
  // position).
  std::string text = Fixture();
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  const std::vector<std::string> poison = {
      "-1", "4294967296", "999999999999999999999", "name", "query",
      "store(periph)", "0x10", "1e9", "", "NaN"};
  Random rng(424242);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::string> mutant = lines;
    switch (rng.Uniform(4)) {
      case 0:  // delete a line
        mutant.erase(mutant.begin() + rng.Uniform(
                         static_cast<uint32_t>(mutant.size())));
        break;
      case 1:  // duplicate a line
        mutant.push_back(
            mutant[rng.Uniform(static_cast<uint32_t>(mutant.size()))]);
        break;
      case 2: {  // swap two lines
        size_t a = rng.Uniform(static_cast<uint32_t>(mutant.size()));
        size_t b = rng.Uniform(static_cast<uint32_t>(mutant.size()));
        std::swap(mutant[a], mutant[b]);
        break;
      }
      default: {  // replace one whitespace-delimited token
        std::string& line =
            mutant[rng.Uniform(static_cast<uint32_t>(mutant.size()))];
        size_t space = line.find(' ');
        if (space == std::string::npos) break;
        size_t next = line.find(' ', space + 1);
        line = line.substr(0, space + 1) +
               poison[rng.Uniform(static_cast<uint32_t>(poison.size()))] +
               (next == std::string::npos ? "" : line.substr(next));
        break;
      }
    }
    std::string joined;
    for (const std::string& line : mutant) joined += line + "\n";
    DriveParser(joined);
  }
}

TEST(ViewFuzzTest, PatternFillsFailCleanly) {
  std::string text = Fixture();
  for (char fill : {'\0', '\xff', ' ', '9', '\n'}) {
    std::string mutant = text;
    // Keep the magic line so parsing reaches the keyword dispatch.
    for (size_t i = 8; i < mutant.size(); ++i) mutant[i] = fill;
    DriveParser(mutant);
  }
}

}  // namespace
}  // namespace vc
