#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "geometry/orientation.h"
#include "image/metrics.h"
#include "geometry/tile_grid.h"
#include "geometry/viewport.h"

namespace vc {
namespace {

// ------------------------------------------------------------- Orientation

TEST(OrientationTest, WrapYaw) {
  EXPECT_NEAR(WrapYaw(0.0), 0.0, 1e-12);
  EXPECT_NEAR(WrapYaw(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(WrapYaw(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(WrapYaw(3 * kPi), kPi, 1e-12);
}

TEST(OrientationTest, YawDifferenceShortestPath) {
  EXPECT_NEAR(YawDifference(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(YawDifference(kTwoPi - 0.1, 0.1), -0.2, 1e-12);
  EXPECT_NEAR(YawDifference(1.0, 1.0), 0.0, 1e-12);
}

TEST(OrientationTest, VectorRoundTrip) {
  for (double yaw : {0.0, 1.0, 3.0, 5.5}) {
    for (double pitch : {0.3, kPi / 2, 2.8}) {
      Orientation o{yaw, pitch};
      Orientation back = Orientation::FromVector(o.ToVector());
      EXPECT_NEAR(back.yaw, yaw, 1e-9);
      EXPECT_NEAR(back.pitch, pitch, 1e-9);
    }
  }
}

TEST(OrientationTest, AngularDistanceProperties) {
  Orientation a{0.0, kPi / 2};
  Orientation b{kPi / 2, kPi / 2};
  EXPECT_NEAR(AngularDistance(a, b), kPi / 2, 1e-9);
  EXPECT_NEAR(AngularDistance(a, a), 0.0, 1e-6);
  // Symmetric.
  EXPECT_NEAR(AngularDistance(a, b), AngularDistance(b, a), 1e-12);
  // Antipodal points are pi apart.
  Orientation c{kPi, kPi / 2};
  EXPECT_NEAR(AngularDistance(a, c), kPi, 1e-9);
}

TEST(OrientationTest, SeamDistanceIsSmall) {
  // Orientations on either side of the yaw seam are angularly close; naive
  // euclidean distance on yaw would say they are ~2π apart.
  Orientation a{0.05, kPi / 2};
  Orientation b{kTwoPi - 0.05, kPi / 2};
  EXPECT_LT(AngularDistance(a, b), 0.2);
}

// ---------------------------------------------------------------- TileGrid

TEST(TileGridTest, TileForBasics) {
  TileGrid grid(4, 4);
  EXPECT_EQ(grid.tile_count(), 16);
  // Center of the first cell.
  TileId t = grid.TileFor({kPi / 4, kPi / 8});
  EXPECT_EQ(t.row, 0);
  EXPECT_EQ(t.col, 0);
  // pitch = π (bottom pole) clamps into the last row.
  t = grid.TileFor({0.0, kPi});
  EXPECT_EQ(t.row, 3);
  // yaw wraps.
  t = grid.TileFor({kTwoPi + 0.1, kPi / 2});
  EXPECT_EQ(t.col, 0);
}

TEST(TileGridTest, IndexRoundTrip) {
  TileGrid grid(3, 5);
  for (int i = 0; i < grid.tile_count(); ++i) {
    EXPECT_EQ(grid.IndexOf(grid.TileAt(i)), i);
  }
}

TEST(TileGridTest, CenterOfIsInsideTile) {
  TileGrid grid(4, 8);
  for (int i = 0; i < grid.tile_count(); ++i) {
    TileId tile = grid.TileAt(i);
    EXPECT_EQ(grid.TileFor(grid.CenterOf(tile)), tile);
  }
}

TEST(TileGridTest, ViewportCoversGazeTile) {
  TileGrid grid(4, 4);
  for (double yaw = 0.1; yaw < kTwoPi; yaw += 0.7) {
    for (double pitch = 0.2; pitch < kPi; pitch += 0.5) {
      Orientation o{yaw, pitch};
      auto tiles = grid.TilesInViewport(o, DegToRad(100), DegToRad(90));
      TileId gaze = grid.TileFor(o);
      EXPECT_NE(std::find(tiles.begin(), tiles.end(), gaze), tiles.end())
          << "yaw=" << yaw << " pitch=" << pitch;
    }
  }
}

TEST(TileGridTest, ViewportIsProperSubsetAwayFromPoles) {
  TileGrid grid(4, 8);
  Orientation equator{kPi, kPi / 2};
  auto tiles = grid.TilesInViewport(equator, DegToRad(90), DegToRad(80));
  EXPECT_GT(tiles.size(), 0u);
  EXPECT_LT(tiles.size(), static_cast<size_t>(grid.tile_count()));
}

TEST(TileGridTest, ViewportWrapsAcrossSeam) {
  TileGrid grid(1, 8);
  Orientation near_seam{0.02, kPi / 2};
  auto tiles = grid.TilesInViewport(near_seam, DegToRad(100), DegToRad(60));
  // Must include both the first and the last column.
  bool has_first = false, has_last = false;
  for (const TileId& t : tiles) {
    if (t.col == 0) has_first = true;
    if (t.col == 7) has_last = true;
  }
  EXPECT_TRUE(has_first);
  EXPECT_TRUE(has_last);
}

TEST(TileGridTest, ViewportOverPoleCoversWholePolarRow) {
  TileGrid grid(4, 4);
  Orientation up{1.0, 0.05};  // staring nearly straight up
  auto tiles = grid.TilesInViewport(up, DegToRad(100), DegToRad(90));
  int row0_count = 0;
  for (const TileId& t : tiles) {
    if (t.row == 0) ++row0_count;
  }
  EXPECT_EQ(row0_count, 4);  // all columns of the top row
}

TEST(TileGridTest, SingleTileGridAlwaysFullCoverage) {
  TileGrid grid(1, 1);
  auto tiles = grid.TilesInViewport({1.0, 1.0}, DegToRad(100), DegToRad(90));
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], (TileId{0, 0}));
}

TEST(TileGridTest, WiderFovCoversMoreTiles) {
  TileGrid grid(6, 12);
  Orientation o{2.0, kPi / 2};
  auto narrow = grid.TilesInViewport(o, DegToRad(60), DegToRad(50));
  auto wide = grid.TilesInViewport(o, DegToRad(140), DegToRad(110));
  EXPECT_LT(narrow.size(), wide.size());
  // Narrow set is a subset of the wide set.
  for (const TileId& t : narrow) {
    EXPECT_NE(std::find(wide.begin(), wide.end(), t), wide.end());
  }
}

TEST(TileGridTest, PixelRectsTileTheFrame) {
  const int width = 256, height = 128;
  for (auto [rows, cols] : {std::pair{1, 1}, {2, 2}, {4, 4}, {2, 8}}) {
    TileGrid grid(rows, cols);
    long long area = 0;
    for (int i = 0; i < grid.tile_count(); ++i) {
      auto rect = grid.PixelRectOf(grid.TileAt(i), width, height, 16);
      ASSERT_TRUE(rect.ok());
      EXPECT_EQ(rect->x % 16, 0);
      EXPECT_EQ(rect->y % 16, 0);
      EXPECT_GT(rect->width, 0);
      area += static_cast<long long>(rect->width) * rect->height;
    }
    EXPECT_EQ(area, static_cast<long long>(width) * height)
        << rows << "x" << cols;
  }
}

TEST(TileGridTest, PixelRectRejectsTooFineGrid) {
  TileGrid grid(16, 16);
  // 64x32 frame with 16 rows => 2-pixel tiles, under the 16px block floor.
  EXPECT_FALSE(grid.PixelRectOf({0, 0}, 64, 32, 16).ok());
}

TEST(TileGridTest, PixelRectRejectsBadTile) {
  TileGrid grid(2, 2);
  EXPECT_FALSE(grid.PixelRectOf({2, 0}, 64, 64, 16).ok());
  EXPECT_FALSE(grid.PixelRectOf({0, -1}, 64, 64, 16).ok());
}

// ---------------------------------------------------------------- Viewport

TEST(ViewportTest, RendersGazeDirectionContent) {
  // Panorama: left hemisphere dark, right hemisphere bright.
  Frame pano(256, 128);
  pano.FillRect(0, 0, 128, 128, 50, 128, 128);
  pano.FillRect(128, 0, 128, 128, 200, 128, 128);

  ViewportSpec spec;
  spec.width = 64;
  spec.height = 64;

  // Gaze at yaw = π/2 (center of the dark half given our mapping of column
  // x = yaw/2π * width: yaw π/2 is column 64, inside [0,128) = dark).
  auto dark_view = RenderViewport(pano, {kPi / 2, kPi / 2}, spec);
  ASSERT_TRUE(dark_view.ok());
  EXPECT_NEAR(dark_view->y(32, 32), 50, 2);

  auto bright_view = RenderViewport(pano, {3 * kPi / 2, kPi / 2}, spec);
  ASSERT_TRUE(bright_view.ok());
  EXPECT_NEAR(bright_view->y(32, 32), 200, 2);
}

TEST(ViewportTest, PoleGazeDoesNotCrash) {
  Frame pano(128, 64);
  pano.Fill(99, 128, 128);
  ViewportSpec spec;
  spec.width = 32;
  spec.height = 32;
  auto up = RenderViewport(pano, {0.0, 0.0}, spec);
  ASSERT_TRUE(up.ok());
  EXPECT_NEAR(up->y(16, 16), 99, 2);
  auto down = RenderViewport(pano, {0.0, kPi}, spec);
  ASSERT_TRUE(down.ok());
}

TEST(ViewportTest, RejectsBadSpecs) {
  Frame pano(128, 64);
  ViewportSpec spec;
  spec.width = 33;  // odd
  EXPECT_FALSE(RenderViewport(pano, {0, kPi / 2}, spec).ok());
  spec.width = 32;
  spec.fov_yaw = kPi;  // too wide for rectilinear projection
  EXPECT_FALSE(RenderViewport(pano, {0, kPi / 2}, spec).ok());
}

TEST(ViewportTest, ViewportPsnrPerfectWhenIdentical) {
  Frame pano(128, 64);
  pano.FillRect(20, 10, 40, 30, 180, 100, 140);
  ViewportSpec spec;
  spec.width = 32;
  spec.height = 32;
  auto psnr = ViewportPsnr(pano, pano, {1.0, 1.5}, spec);
  ASSERT_TRUE(psnr.ok());
  EXPECT_EQ(*psnr, kInfinitePsnr);
}

TEST(ViewportTest, ViewportPsnrIgnoresOutOfViewDamage) {
  Frame reference(256, 128);
  reference.Fill(128, 128, 128);
  Frame damaged = reference;
  // Damage the area behind the viewer (yaw ≈ π+gaze).
  damaged.FillRect(0, 48, 32, 32, 0, 128, 128);

  ViewportSpec spec;
  spec.width = 64;
  spec.height = 64;
  // Gaze far from the damage: quality is perfect in-view.
  auto psnr = ViewportPsnr(reference, damaged, {kPi, kPi / 2}, spec);
  ASSERT_TRUE(psnr.ok());
  EXPECT_EQ(*psnr, kInfinitePsnr);
  // Gaze at the damage: quality collapses.
  auto bad = ViewportPsnr(reference, damaged, {0.4, kPi / 2}, spec);
  ASSERT_TRUE(bad.ok());
  EXPECT_LT(*bad, 40.0);
}

}  // namespace
}  // namespace vc
