#include <gtest/gtest.h>

#include "image/frame.h"
#include "image/metrics.h"
#include "image/scene.h"
#include "image/stereo.h"

namespace vc {
namespace {

TEST(FrameTest, ConstructsBlack) {
  Frame frame(64, 32);
  EXPECT_EQ(frame.width(), 64);
  EXPECT_EQ(frame.height(), 32);
  EXPECT_EQ(frame.chroma_width(), 32);
  EXPECT_EQ(frame.chroma_height(), 16);
  EXPECT_EQ(frame.y(0, 0), 16);
  EXPECT_EQ(frame.u(0, 0), 128);
  EXPECT_EQ(frame.v(0, 0), 128);
  EXPECT_EQ(frame.ByteSize(), 64u * 32 + 2 * 32 * 16);
}

TEST(FrameTest, FillAndAccessors) {
  Frame frame(16, 16);
  frame.Fill(100, 90, 110);
  EXPECT_EQ(frame.y(7, 9), 100);
  EXPECT_EQ(frame.u(3, 3), 90);
  EXPECT_EQ(frame.v(3, 3), 110);
  frame.set_y(5, 5, 42);
  EXPECT_EQ(frame.y(5, 5), 42);
}

TEST(FrameTest, FillRectWrapsHorizontally) {
  Frame frame(32, 16);
  frame.Fill(0, 128, 128);
  // Rectangle starting near the right edge wraps to the left edge.
  frame.FillRect(30, 4, 6, 4, 200, 128, 128);
  EXPECT_EQ(frame.y(31, 5), 200);
  EXPECT_EQ(frame.y(0, 5), 200);
  EXPECT_EQ(frame.y(3, 5), 200);
  EXPECT_EQ(frame.y(4, 5), 0);
  // Vertical clipping: nothing above/below.
  EXPECT_EQ(frame.y(31, 3), 0);
  EXPECT_EQ(frame.y(31, 8), 0);
}

TEST(FrameTest, FillCircleStaysInBounds) {
  Frame frame(64, 32);
  frame.FillCircle(0, 0, 10, 255, 128, 128);   // top-left pole corner
  frame.FillCircle(63, 31, 10, 255, 128, 128); // bottom-right
  EXPECT_EQ(frame.y(0, 0), 255);
  EXPECT_EQ(frame.y(63, 31), 255);
}

TEST(FrameTest, CropPasteRoundTrip) {
  Frame frame(32, 32);
  frame.FillRect(8, 8, 8, 8, 222, 100, 150);
  auto crop = frame.Crop(8, 8, 8, 8);
  ASSERT_TRUE(crop.ok());
  EXPECT_EQ(crop->width(), 8);
  EXPECT_EQ(crop->y(0, 0), 222);
  EXPECT_EQ(crop->u(0, 0), 100);

  Frame target(32, 32);
  ASSERT_TRUE(target.Paste(*crop, 16, 16).ok());
  EXPECT_EQ(target.y(16, 16), 222);
  EXPECT_EQ(target.y(15, 16), 16);
}

TEST(FrameTest, CropRejectsBadArgs) {
  Frame frame(32, 32);
  EXPECT_TRUE(frame.Crop(1, 0, 8, 8).status().IsInvalidArgument());  // odd x
  EXPECT_TRUE(frame.Crop(0, 0, 40, 8).status().IsInvalidArgument());
  EXPECT_TRUE(frame.Paste(Frame(16, 16), 20, 20).IsInvalidArgument());
  EXPECT_TRUE(frame.Paste(Frame(16, 16), 3, 0).IsInvalidArgument());
}

TEST(ScaleTest, DownUpRoundTripApproximates) {
  Frame frame(64, 64);
  // Smooth gradient survives down+up scaling well.
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      frame.set_y(x, y, static_cast<uint8_t>(2 * x + y));
    }
  }
  auto down = ScaleFrame(frame, 32, 32);
  ASSERT_TRUE(down.ok());
  auto up = ScaleFrame(*down, 64, 64);
  ASSERT_TRUE(up.ok());
  auto psnr = LumaPsnr(frame, *up);
  ASSERT_TRUE(psnr.ok());
  EXPECT_GT(*psnr, 35.0);
}

TEST(ScaleTest, RejectsOddTargets) {
  Frame frame(16, 16);
  EXPECT_FALSE(ScaleFrame(frame, 15, 16).ok());
  EXPECT_FALSE(ScaleFrame(frame, 0, 16).ok());
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, IdenticalFramesAreInfinitePsnr) {
  Frame a(32, 32);
  a.FillRect(0, 0, 32, 32, 77, 128, 128);
  Frame b = a;
  auto psnr = LumaPsnr(a, b);
  ASSERT_TRUE(psnr.ok());
  EXPECT_EQ(*psnr, kInfinitePsnr);
  auto ssim = LumaSsim(a, b);
  ASSERT_TRUE(ssim.ok());
  EXPECT_NEAR(*ssim, 1.0, 1e-9);
}

TEST(MetricsTest, KnownMse) {
  Frame a(16, 16), b(16, 16);
  a.Fill(100, 128, 128);
  b.Fill(110, 128, 128);
  auto mse = LumaMse(a, b);
  ASSERT_TRUE(mse.ok());
  EXPECT_DOUBLE_EQ(*mse, 100.0);
  auto psnr = LumaPsnr(a, b);
  ASSERT_TRUE(psnr.ok());
  EXPECT_NEAR(*psnr, 28.13, 0.01);  // 10*log10(255^2/100)
}

TEST(MetricsTest, SizeMismatchRejected) {
  Frame a(16, 16), b(32, 32);
  EXPECT_TRUE(LumaPsnr(a, b).status().IsInvalidArgument());
  EXPECT_TRUE(WsPsnr(a, b).status().IsInvalidArgument());
}

TEST(MetricsTest, WsPsnrWeightsEquatorMore) {
  // Same per-pixel error count placed at the pole vs the equator: the
  // equatorial error must hurt WS-PSNR strictly more.
  Frame ref(64, 32);
  ref.Fill(128, 128, 128);
  Frame pole_err = ref, equator_err = ref;
  for (int x = 0; x < 64; ++x) {
    pole_err.set_y(x, 0, 255);          // top row: near-zero weight
    equator_err.set_y(x, 16, 255);      // equator row: max weight
  }
  auto pole = WsPsnr(ref, pole_err);
  auto equator = WsPsnr(ref, equator_err);
  ASSERT_TRUE(pole.ok());
  ASSERT_TRUE(equator.ok());
  EXPECT_GT(*pole, *equator);
  // Plain PSNR sees both identically.
  EXPECT_DOUBLE_EQ(*LumaPsnr(ref, pole_err), *LumaPsnr(ref, equator_err));
}

TEST(MetricsTest, SsimDropsWithStructuralDamage) {
  Frame a(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      a.set_y(x, y, static_cast<uint8_t>((x ^ y) * 4));
    }
  }
  Frame shuffled(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      shuffled.set_y(x, y, a.y(63 - x, y));
    }
  }
  auto ssim = LumaSsim(a, shuffled);
  ASSERT_TRUE(ssim.ok());
  EXPECT_LT(*ssim, 0.5);
}

// ----------------------------------------------------------------- Scenes

TEST(SceneTest, FactoryKnowsStandardScenes) {
  SceneOptions options;
  for (const auto& name : StandardSceneNames()) {
    auto scene = MakeScene(name, options);
    ASSERT_TRUE(scene.ok()) << name;
    EXPECT_EQ((*scene)->name(), name);
    EXPECT_EQ((*scene)->width(), options.width);
  }
  EXPECT_TRUE(MakeScene("nope", options).status().IsInvalidArgument());
}

TEST(SceneTest, RejectsBadDimensions) {
  SceneOptions options;
  options.width = 30;
  EXPECT_FALSE(MakeScene("venice", options).ok());
  options.width = 127;
  options.height = 64;
  EXPECT_FALSE(MakeScene("venice", options).ok());
}

TEST(SceneTest, FramesAreDeterministic) {
  SceneOptions options;
  options.width = 128;
  options.height = 64;
  for (const auto& name : StandardSceneNames()) {
    auto s1 = MakeScene(name, options);
    auto s2 = MakeScene(name, options);
    ASSERT_TRUE(s1.ok() && s2.ok());
    Frame f1 = (*s1)->FrameAt(17);
    Frame f2 = (*s2)->FrameAt(17);
    EXPECT_EQ(f1.y_plane(), f2.y_plane()) << name;
    EXPECT_EQ(f1.u_plane(), f2.u_plane()) << name;
  }
}

TEST(SceneTest, MotionProfilesAreOrdered) {
  // Per design: coaster (high motion) changes more frame-to-frame than
  // timelapse (low motion). This ordering is what makes the content classes
  // meaningful for the codec benchmarks.
  SceneOptions options;
  options.width = 128;
  options.height = 64;
  auto motion = [&](const std::string& name) {
    auto scene = MakeScene(name, options);
    Frame a = (*scene)->FrameAt(10);
    Frame b = (*scene)->FrameAt(11);
    return *LumaMse(a, b);
  };
  double timelapse = motion("timelapse");
  double coaster = motion("coaster");
  EXPECT_LT(timelapse, coaster);
}

// ----------------------------------------------------------------- Stereo

TEST(StereoTest, PackedDimensionsAndNaming) {
  SceneOptions options;
  options.width = 128;
  options.height = 64;
  auto stereo = NewStereoScene(NewVeniceScene(options));
  EXPECT_EQ(stereo->width(), 128);
  EXPECT_EQ(stereo->height(), 128);  // 2x mono height
  EXPECT_EQ(stereo->name(), "venice-stereo");
  Frame packed = stereo->FrameAt(3);
  EXPECT_EQ(packed.height(), 128);
}

TEST(StereoTest, EyesAreShiftedCopiesOfMono) {
  SceneOptions options;
  options.width = 128;
  options.height = 64;
  auto mono = NewVeniceScene(options);
  auto stereo = NewStereoScene(NewVeniceScene(options), /*offset=*/0.2);
  Frame packed = stereo->FrameAt(5);
  auto left = ExtractEyeView(packed, Eye::kLeft);
  auto right = ExtractEyeView(packed, Eye::kRight);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  EXPECT_EQ(left->width(), 128);
  EXPECT_EQ(left->height(), 64);
  // Eyes differ from each other (parallax)…
  auto eye_mse = LumaMse(*left, *right);
  ASSERT_TRUE(eye_mse.ok());
  EXPECT_GT(*eye_mse, 0.0);
  // …but each eye is a pure column roll of the mono frame: rolling left by
  // the known shift recovers the mono frame exactly at some columns. Check
  // content statistics instead: same mean luma.
  Frame mono_frame = mono->FrameAt(5);
  auto mean = [](const Frame& f) {
    double sum = 0;
    for (uint8_t v : f.y_plane()) sum += v;
    return sum / f.y_plane().size();
  };
  EXPECT_NEAR(mean(*left), mean(mono_frame), 0.5);
  EXPECT_NEAR(mean(*right), mean(mono_frame), 0.5);
}

TEST(StereoTest, ExtractEyeValidation) {
  Frame bad(16, 10);  // height not multiple of 4
  EXPECT_FALSE(ExtractEyeView(bad, Eye::kLeft).ok());
  EXPECT_FALSE(ExtractEyeView(Frame(), Eye::kLeft).ok());
}

TEST(SceneTest, RenderSceneProducesCount) {
  SceneOptions options;
  options.width = 64;
  options.height = 32;
  auto scene = MakeScene("venice", options);
  auto frames = RenderScene(**scene, 5);
  EXPECT_EQ(frames.size(), 5u);
}

}  // namespace
}  // namespace vc
