#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "streaming/manifest.h"

// Deterministic fuzzing of the VCMPD manifest parser (ROADMAP item 6): a
// valid manifest — plan overlay and live overlay included — is truncated at
// every length, peppered with seeded bit flips, rewritten line-by-line, and
// pattern-filled, and every mutant goes through ParseManifest. The contract
// is totality: every input either parses or returns a clean error Status;
// crashes, hangs, and out-of-bounds access (the ASan/UBSan CI leg runs this
// suite) are the failures. Mutants that do parse must additionally
// round-trip — regenerating from the parsed metadata yields a manifest that
// parses again — so the canonical form is a fixed point even for inputs the
// generator never produced.

namespace vc {
namespace {

VideoMetadata FuzzSample() {
  VideoMetadata m;
  m.name = "fuzz";
  m.version = 7;
  m.width = 256;
  m.height = 128;
  m.fps_times_100 = 2400;
  m.frames_per_segment = 12;
  m.tile_rows = 2;
  m.tile_cols = 4;
  m.ladder = {{"high", 14}, {"low", 42}};
  m.segments = {{0, 12}, {12, 12}, {24, 5}};
  m.cells.resize(3 * 8 * 2);
  for (size_t i = 0; i < m.cells.size(); ++i) {
    m.cells[i] = CellInfo{900 + i * 17, static_cast<uint32_t>(0xC0DE + i)};
  }
  return m;
}

std::string Fixture() {
  VideoMetadata m = FuzzSample();
  ManifestPlan plan;
  plan.entries.push_back({0, std::vector<int>(8, 0)});
  plan.entries.push_back({2, {0, 1, 0, 1, -1, 1, 0, 0}});
  ManifestLive live;
  live.epoch = 3;
  live.complete = false;
  live.publish_times_ms = {1250, 2250, 3333};
  return GenerateManifest(m, &plan, &live);
}

void DriveParser(const std::string& text) {
  ManifestPlan plan;
  ManifestLive live;
  auto parsed = ParseManifest(Slice(text), &plan, &live);
  if (!parsed.ok()) return;
  // Whatever parsed was validated; its canonical regeneration must parse.
  std::string out =
      GenerateManifest(*parsed, &plan, live.empty() ? nullptr : &live);
  EXPECT_TRUE(ParseManifest(Slice(out), &plan, &live).ok())
      << "regenerated manifest failed to re-parse";
}

TEST(ManifestFuzzTest, TruncationsFailCleanly) {
  std::string text = Fixture();
  for (size_t keep = 0; keep <= text.size(); ++keep) {
    DriveParser(text.substr(0, keep));
  }
}

TEST(ManifestFuzzTest, BitFlipsFailCleanly) {
  std::string text = Fixture();
  Random rng(20260808);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutant = text;
    int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < flips; ++i) {
      size_t bit = rng.Uniform(static_cast<uint32_t>(mutant.size() * 8));
      mutant[bit / 8] = static_cast<char>(
          static_cast<uint8_t>(mutant[bit / 8]) ^ (1u << (bit % 8)));
    }
    DriveParser(mutant);
  }
}

TEST(ManifestFuzzTest, LineSurgeryFailsCleanly) {
  // Structured mutations the bit flipper rarely finds: whole lines deleted,
  // duplicated, or swapped, and single tokens replaced with adversarial
  // values (overflow, negatives, keywords in value position).
  std::string text = Fixture();
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  const std::vector<std::string> poison = {
      "-1", "4294967296", "999999999999999999999", "cell", "live",
      "0x10", "1e9", "", "NaN"};
  Random rng(424242);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::string> mutant = lines;
    switch (rng.Uniform(4)) {
      case 0:  // delete a line
        mutant.erase(mutant.begin() + rng.Uniform(
                         static_cast<uint32_t>(mutant.size())));
        break;
      case 1:  // duplicate a line
        mutant.push_back(
            mutant[rng.Uniform(static_cast<uint32_t>(mutant.size()))]);
        break;
      case 2: {  // swap two lines
        size_t a = rng.Uniform(static_cast<uint32_t>(mutant.size()));
        size_t b = rng.Uniform(static_cast<uint32_t>(mutant.size()));
        std::swap(mutant[a], mutant[b]);
        break;
      }
      default: {  // replace one whitespace-delimited token
        std::string& line =
            mutant[rng.Uniform(static_cast<uint32_t>(mutant.size()))];
        size_t space = line.find(' ');
        if (space == std::string::npos) break;
        size_t next = line.find(' ', space + 1);
        line = line.substr(0, space + 1) +
               poison[rng.Uniform(static_cast<uint32_t>(poison.size()))] +
               (next == std::string::npos ? "" : line.substr(next));
        break;
      }
    }
    std::string joined;
    for (const std::string& line : mutant) joined += line + "\n";
    DriveParser(joined);
  }
}

TEST(ManifestFuzzTest, PatternFillsFailCleanly) {
  std::string text = Fixture();
  for (char fill : {'\0', '\xff', ' ', '9', '\n'}) {
    std::string mutant = text;
    // Keep the header line so parsing reaches the keyword dispatch.
    for (size_t i = 8; i < mutant.size(); ++i) mutant[i] = fill;
    DriveParser(mutant);
  }
}

}  // namespace
}  // namespace vc
