#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <random>
#include <set>
#include <thread>

#include "codec/encoder.h"
#include "common/env.h"
#include "common/math_util.h"
#include "image/scene.h"
#include "storage/cache.h"
#include "storage/cell_source.h"
#include "storage/metadata.h"
#include "storage/monolithic.h"
#include "storage/prefetcher.h"
#include "storage/shard_map.h"
#include "storage/sharded_store.h"
#include "storage/storage_manager.h"
#include "storage/tiered_cache.h"

namespace vc {
namespace {

// ------------------------------------------------------------------- Cache

std::shared_ptr<const std::vector<uint8_t>> Bytes(size_t n, uint8_t fill) {
  return std::make_shared<const std::vector<uint8_t>>(n, fill);
}

TEST(LruCacheTest, HitAndMiss) {
  LruCache cache(1024);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, Bytes(100, 1));
  auto v = cache.Get(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->size(), 100u);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes_cached, 100u);
  EXPECT_NEAR(stats.HitRate(), 0.5, 1e-9);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(250);
  cache.Put(1, Bytes(100, 1));
  cache.Put(2, Bytes(100, 2));
  EXPECT_NE(cache.Get(1), nullptr);  // refresh a
  cache.Put(3, Bytes(100, 3));       // evicts b
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, OversizedValueNotCached) {
  LruCache cache(50);
  cache.Put(5, Bytes(100, 1));
  EXPECT_EQ(cache.Get(5), nullptr);
  EXPECT_EQ(cache.stats().bytes_cached, 0u);
}

TEST(LruCacheTest, ReplaceUpdatesBytes) {
  LruCache cache(1000);
  cache.Put(4, Bytes(100, 1));
  cache.Put(4, Bytes(300, 2));
  EXPECT_EQ(cache.stats().bytes_cached, 300u);
  auto v = cache.Get(4);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ((*v)[0], 2);
}

TEST(LruCacheTest, ReplaceNearCapacityKeepsAccountingExact) {
  // Regression guard: replacing an existing key near capacity must account
  // bytes_cached exactly (old size out, new size in) and evict in strict
  // LRU order — never the just-replaced key.
  LruCache cache(300);
  cache.Put(1, Bytes(100, 1));
  cache.Put(2, Bytes(100, 2));
  cache.Put(1, Bytes(180, 3));  // grows a: 280 bytes, still under capacity
  EXPECT_EQ(cache.stats().bytes_cached, 280u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_NE(cache.Get(2), nullptr);

  // Replacing a again pushes the total over capacity; the LRU victim is a's
  // neighbour b (a was just touched), and the accounting lands exactly on
  // the new value's size.
  cache.Put(1, Bytes(250, 4));
  EXPECT_EQ(cache.stats().bytes_cached, 250u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Get(2), nullptr);
  auto v = cache.Get(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->size(), 250u);
  EXPECT_EQ((*v)[0], 4);

  // Shrinking replacement: bytes_cached falls, nothing evicted.
  cache.Put(1, Bytes(10, 5));
  EXPECT_EQ(cache.stats().bytes_cached, 10u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, GetOrComputeCachesAndServesHits) {
  LruCache cache(1024);
  int loads = 0;
  auto loader = [&loads]() -> Result<LruCache::Value> {
    ++loads;
    return Bytes(64, 7);
  };
  auto first = cache.GetOrCompute(4, loader);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(loads, 1);
  auto second = cache.GetOrCompute(4, loader);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(loads, 1) << "second call must be served from cache";
  EXPECT_EQ(*first, *second);  // same shared buffer
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LruCacheTest, GetOrComputeErrorsAreNotCached) {
  LruCache cache(1024);
  int loads = 0;
  auto failing = [&loads]() -> Result<LruCache::Value> {
    ++loads;
    return Status::IOError("backing store down");
  };
  EXPECT_FALSE(cache.GetOrCompute(4, failing).ok());
  EXPECT_FALSE(cache.GetOrCompute(4, failing).ok());
  EXPECT_EQ(loads, 2) << "errors must not be cached";
  EXPECT_EQ(cache.stats().bytes_cached, 0u);
}

TEST(LruCacheTest, GetOrComputeSingleFlight) {
  // Thundering herd: many threads miss on one key at once; the loader must
  // run exactly once and every caller must receive the same buffer.
  LruCache cache(1 << 20);
  std::atomic<int> loads{0};
  std::atomic<int> in_loader{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<LruCache::Value> values(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto result = cache.GetOrCompute(
          8, [&]() -> Result<LruCache::Value> {
            in_loader.fetch_add(1);
            loads.fetch_add(1);
            // Hold the load open long enough for the herd to pile up.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            in_loader.fetch_sub(1);
            return Bytes(128, 9);
          });
      ASSERT_TRUE(result.ok());
      values[i] = *result;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(loads.load(), 1) << "concurrent misses must coalesce to one load";
  EXPECT_EQ(in_loader.load(), 0);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(values[i], values[0]) << "all callers share the loaded buffer";
  }
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kThreads));
  // Everyone but the winner either coalesced onto the flight or hit the
  // cache after the load landed.
  EXPECT_EQ(stats.coalesced + stats.hits + 1,
            static_cast<uint64_t>(kThreads));
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache cache(1000);
  cache.Put(1, Bytes(10, 1));
  cache.Put(2, Bytes(10, 1));
  cache.Erase(1);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(cache.stats().bytes_cached, 0u);
}

// ------------------------------------------------------- Async cache loads

TEST(LruCacheAsyncTest, DemandLoadResolvesAndCaches) {
  LruCache cache(1 << 20);
  ThreadPool pool(2);
  auto loader = []() -> Result<LruCache::Value> { return Bytes(64, 7); };
  auto handle = cache.GetOrComputeAsync(4, loader, &pool, LoadKind::kDemand);
  ASSERT_TRUE(handle.valid());
  EXPECT_FALSE(handle.hit());
  auto value = handle.Wait();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ((*value)->size(), 64u);

  // Second request finds the value cached: already-resolved handle, no
  // second load dispatched.
  auto again = cache.GetOrComputeAsync(
      4,
      []() -> Result<LruCache::Value> {
        ADD_FAILURE() << "cached key must not reload";
        return Status::Internal("unexpected load");
      },
      &pool, LoadKind::kDemand);
  EXPECT_TRUE(again.hit());
  EXPECT_TRUE(again.ready());
  ASSERT_TRUE(again.Wait().ok());

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(LruCacheAsyncTest, NullPoolRunsInline) {
  LruCache cache(1 << 20);
  int loads = 0;
  auto handle = cache.GetOrComputeAsync(
      4,
      [&loads]() -> Result<LruCache::Value> {
        ++loads;
        return Bytes(32, 3);
      },
      /*pool=*/nullptr, LoadKind::kDemand);
  EXPECT_TRUE(handle.ready());
  EXPECT_EQ(loads, 1);
  ASSERT_TRUE(handle.Wait().ok());
  EXPECT_NE(cache.Get(4), nullptr);
}

TEST(LruCacheAsyncTest, PrefetchAttributionHitAndWasted) {
  LruCache cache(1 << 20);
  ThreadPool pool(2);
  auto loader = []() -> Result<LruCache::Value> { return Bytes(64, 1); };

  // A prefetch probe is invisible to demand statistics.
  ASSERT_TRUE(cache.GetOrComputeAsync(9, loader, &pool,
                                      LoadKind::kPrefetch)
                  .Wait()
                  .ok());
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);

  // Demand consumption of the prefetched value credits the prefetcher.
  bool was_hit = false;
  auto value = cache.GetOrCompute(
      9,
      []() -> Result<LruCache::Value> {
        ADD_FAILURE() << "prefetched key must not reload";
        return Status::Internal("unexpected load");
      },
      &was_hit);
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(was_hit);
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);

  // A prefetched value dropped without any demand touch is wasted work —
  // and the already-consumed one must not be double-counted.
  ASSERT_TRUE(cache.GetOrComputeAsync(10, loader, &pool,
                                      LoadKind::kPrefetch)
                  .Wait()
                  .ok());
  cache.Clear();
  stats = cache.stats();
  EXPECT_EQ(stats.prefetch_wasted, 1u);
  EXPECT_EQ(stats.prefetch_hits, 1u);
}

TEST(LruCacheAsyncTest, DemandCoalescesWithInflightPrefetch) {
  LruCache cache(1 << 20);
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  auto handle = cache.GetOrComputeAsync(
      4,
      [&]() -> Result<LruCache::Value> {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
        return Bytes(32, 5);
      },
      &pool, LoadKind::kPrefetch);

  // A demand read arriving while the prefetch is still loading must
  // coalesce onto it (crediting the prefetcher), not start a second load.
  std::thread demander([&cache] {
    auto value = cache.GetOrCompute(4, []() -> Result<LruCache::Value> {
      ADD_FAILURE() << "demand must coalesce with the in-flight prefetch";
      return Status::Internal("unexpected load");
    });
    EXPECT_TRUE(value.ok());
  });
  while (cache.stats().coalesced == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  demander.join();
  ASSERT_TRUE(handle.Wait().ok());

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.misses, 1u);  // the demand read missed, then waited
}

TEST(LruCacheAsyncTest, ErrorsResolveHandleAndAreNotCached) {
  LruCache cache(1 << 20);
  ThreadPool pool(2);
  auto handle = cache.GetOrComputeAsync(
      4,
      []() -> Result<LruCache::Value> {
        return Status::IOError("backing store down");
      },
      &pool, LoadKind::kDemand);
  EXPECT_TRUE(handle.Wait().status().IsIOError());

  // The failure poisoned nothing: the next load runs fresh and succeeds.
  auto retry =
      cache.GetOrCompute(4, []() -> Result<LruCache::Value> {
        return Bytes(64, 2);
      });
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(cache.stats().bytes_cached, 64u);
}

TEST(LruCacheAsyncTest, PoolShutdownResolvesHandles) {
  LruCache cache(1 << 20);
  ThreadPool pool(1);
  pool.Shutdown();
  auto handle = cache.GetOrComputeAsync(
      4, []() -> Result<LruCache::Value> { return Bytes(16, 1); }, &pool,
      LoadKind::kPrefetch);
  ASSERT_TRUE(handle.ready()) << "refused dispatch must resolve immediately";
  EXPECT_TRUE(handle.Wait().status().IsAborted());
  EXPECT_EQ(cache.stats().bytes_cached, 0u);

  // The key is not stuck in flight: a synchronous load still works.
  auto value = cache.GetOrCompute(
      4, []() -> Result<LruCache::Value> { return Bytes(16, 1); });
  EXPECT_TRUE(value.ok());
}

TEST(LruCacheAsyncTest, MixedDemandPrefetchHammer) {
  // Thread-sanitizer target: demand reads, prefetch probes, coalesced
  // waits, failing loaders, and cache clears all race over a small key
  // space. Every handle must resolve, values must match their key's
  // loader, and error loads must never land in the cache.
  LruCache cache(1 << 16);
  ThreadPool pool(4);
  constexpr int kKeys = 8;
  auto loader_for = [](int key) -> LruCache::Loader {
    if (key % 4 == 3) {
      return []() -> Result<LruCache::Value> {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        return Status::IOError("flaky backing store");
      };
    }
    return [key]() -> Result<LruCache::Value> {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      return Bytes(256, static_cast<uint8_t>(key));
    };
  };

  std::atomic<int> bad_values{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        int key = (t * 7 + i) % kKeys;
        PackedCellKey name = 900 + key;
        int op = (t + i) % 3;
        if (op == 0) {
          auto value = cache.GetOrCompute(name, loader_for(key));
          if (value.ok() && (**value)[0] != key) bad_values.fetch_add(1);
        } else if (op == 1) {
          auto handle = cache.GetOrComputeAsync(name, loader_for(key), &pool,
                                                LoadKind::kDemand);
          auto value = handle.Wait();
          if (value.ok() && (**value)[0] != key) bad_values.fetch_add(1);
        } else {
          // Fire-and-forget speculation, like the prefetcher's probes.
          cache.GetOrComputeAsync(name, loader_for(key), &pool,
                                  LoadKind::kPrefetch);
        }
        if (i % 64 == 63) cache.Clear();
        if (i % 97 == 96) cache.Erase(name);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  pool.WaitIdle();

  EXPECT_EQ(bad_values.load(), 0);
  for (int key = 3; key < kKeys; key += 4) {
    EXPECT_EQ(cache.Get(900 + key), nullptr)
        << "error loads must never be cached";
  }
  CacheStats stats = cache.stats();
  // Each issued prefetch ends as at most one of {hit, wasted}.
  EXPECT_LE(stats.prefetch_hits + stats.prefetch_wasted,
            stats.prefetch_issued);
}

// --------------------------------------------------------------- Metadata

VideoMetadata SampleMetadata() {
  VideoMetadata m;
  m.name = "venice";
  m.version = 2;
  m.width = 256;
  m.height = 128;
  m.fps_times_100 = 3000;
  m.frames_per_segment = 30;
  m.tile_rows = 2;
  m.tile_cols = 2;
  m.ladder = DefaultQualityLadder();
  m.segments = {{0, 30}, {30, 30}};
  m.cells.assign(2 * 4 * 3, CellInfo{100, 7});
  return m;
}

TEST(VideoMetadataTest, SerializeParseRoundTrip) {
  VideoMetadata m = SampleMetadata();
  auto bytes = m.Serialize();
  auto parsed = VideoMetadata::Parse(Slice(bytes));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name, "venice");
  EXPECT_EQ(parsed->version, 2u);
  EXPECT_EQ(parsed->width, 256);
  EXPECT_EQ(parsed->tile_count(), 4);
  EXPECT_EQ(parsed->quality_count(), 3);
  EXPECT_EQ(parsed->segment_count(), 2);
  EXPECT_EQ(parsed->cells.size(), 24u);
  EXPECT_EQ(parsed->TotalBytes(), 2400u);
}

TEST(VideoMetadataTest, CellIndexLayout) {
  VideoMetadata m = SampleMetadata();
  // Segment-major, then tile, then quality.
  EXPECT_EQ(m.CellIndex(0, 0, 0), 0u);
  EXPECT_EQ(m.CellIndex(0, 0, 2), 2u);
  EXPECT_EQ(m.CellIndex(0, 1, 0), 3u);
  EXPECT_EQ(m.CellIndex(1, 0, 0), 12u);
  EXPECT_EQ(m.CellIndex(1, 3, 2), 23u);
}

TEST(VideoMetadataTest, ValidationCatchesInconsistencies) {
  VideoMetadata m = SampleMetadata();
  m.cells.pop_back();
  EXPECT_FALSE(m.Validate().ok());

  m = SampleMetadata();
  m.segments[1].start_frame = 31;  // gap
  EXPECT_FALSE(m.Validate().ok());

  m = SampleMetadata();
  m.name = "bad name!";
  EXPECT_FALSE(m.Validate().ok());

  m = SampleMetadata();
  m.ladder.clear();
  EXPECT_FALSE(m.Validate().ok());

  m = SampleMetadata();
  m.width = 100;  // not multiple of 16
  EXPECT_FALSE(m.Validate().ok());
}

TEST(VideoMetadataTest, SegmentBytesAtQuality) {
  VideoMetadata m = SampleMetadata();
  for (int tile = 0; tile < 4; ++tile) {
    m.cells[m.CellIndex(1, tile, 0)].byte_size = 1000;
  }
  EXPECT_EQ(m.SegmentBytesAtQuality(1, 0), 4000u);
  EXPECT_EQ(m.SegmentBytesAtQuality(0, 0), 400u);
}

// ---------------------------------------------------------- StorageManager

class StorageManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    StorageOptions options;
    options.env = env_.get();
    options.root = "/store";
    options.cache_capacity_bytes = 1 << 20;
    auto store = StorageManager::Open(options);
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }

  /// Stores a tiny synthetic video and returns its committed metadata.
  VideoMetadata StoreSample(const std::string& name, int segments = 2) {
    VideoMetadata layout;
    layout.name = name;
    layout.width = 64;
    layout.height = 32;
    layout.frames_per_segment = 4;
    layout.tile_rows = 1;
    layout.tile_cols = 2;
    layout.ladder = {{"high", 14}, {"low", 40}};
    auto writer = store_->NewVideoWriter(layout);
    EXPECT_TRUE(writer.ok());
    for (int s = 0; s < segments; ++s) {
      std::vector<std::vector<uint8_t>> cells;
      for (int i = 0; i < 4; ++i) {  // 2 tiles × 2 qualities
        cells.push_back(std::vector<uint8_t>(
            50 + 10 * s + i, static_cast<uint8_t>(s * 16 + i)));
      }
      EXPECT_TRUE((*writer)->AddSegment(4, cells).ok());
    }
    auto version = (*writer)->Commit();
    EXPECT_TRUE(version.ok());
    auto metadata = store_->GetVideoVersion(name, *version);
    EXPECT_TRUE(metadata.ok());
    return *metadata;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<StorageManager> store_;
};

TEST_F(StorageManagerTest, StoreAndList) {
  StoreSample("alpha");
  StoreSample("beta");
  auto videos = store_->ListVideos();
  ASSERT_TRUE(videos.ok());
  EXPECT_EQ(*videos, (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(StorageManagerTest, VersionsIncrease) {
  StoreSample("v");
  StoreSample("v");
  StoreSample("v");
  auto versions = store_->ListVersions("v");
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(*versions, (std::vector<uint32_t>{1, 2, 3}));
  auto latest = store_->GetVideo("v");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, 3u);
}

TEST_F(StorageManagerTest, SnapshotIsolationAcrossVersions) {
  VideoMetadata v1 = StoreSample("video", 1);
  VideoMetadata v2 = StoreSample("video", 2);
  // The old version's cells remain readable after the new commit.
  auto old_cell = store_->ReadCell(v1, 0, 0, 0);
  ASSERT_TRUE(old_cell.ok());
  auto new_cell = store_->ReadCell(v2, 1, 0, 0);
  ASSERT_TRUE(new_cell.ok());
  EXPECT_EQ((*old_cell)->size(), 50u);
}

TEST_F(StorageManagerTest, ReadCellVerifiesChecksum) {
  VideoMetadata m = StoreSample("video", 1);
  // Corrupt the stored bytes behind the manager's back.
  std::string path =
      "/store/video/v1/" + m.CellFileName(0, 1, 1);
  auto bytes = env_->ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  auto corrupted = *bytes;
  corrupted[10] ^= 0xff;
  ASSERT_TRUE(env_->WriteFile(path, Slice(corrupted)).ok());
  auto cell = store_->ReadCell(m, 0, 1, 1);
  EXPECT_TRUE(cell.status().IsCorruption());
}

TEST_F(StorageManagerTest, ReadCellUsesCache) {
  VideoMetadata m = StoreSample("video", 1);
  ASSERT_TRUE(store_->ReadCell(m, 0, 0, 0).ok());
  ASSERT_TRUE(store_->ReadCell(m, 0, 0, 0).ok());
  CacheStats stats = store_->cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(StorageManagerTest, ReadCellRangeChecks) {
  VideoMetadata m = StoreSample("video", 1);
  EXPECT_TRUE(store_->ReadCell(m, 5, 0, 0).status().IsInvalidArgument());
  EXPECT_TRUE(store_->ReadCell(m, 0, 9, 0).status().IsInvalidArgument());
  EXPECT_TRUE(store_->ReadCell(m, 0, 0, 9).status().IsInvalidArgument());
}

TEST_F(StorageManagerTest, AsyncReadsMatchSyncReads) {
  VideoMetadata m = StoreSample("video", 2);

  // Reopen the same root with an I/O pool and a little simulated
  // backing-store latency, as a server would.
  StorageOptions options;
  options.env = env_.get();
  options.root = "/store";
  options.io_threads = 2;
  options.read_latency_seconds = 0.0005;
  auto async_store = StorageManager::Open(options);
  ASSERT_TRUE(async_store.ok());
  ASSERT_NE((*async_store)->io_pool(), nullptr);

  auto handle = (*async_store)->ReadCellAsync(m, 0, 1, 1);
  ASSERT_TRUE(handle.ok());
  auto async_value = handle->Wait();
  ASSERT_TRUE(async_value.ok());
  auto sync_value = store_->ReadCell(m, 0, 1, 1);
  ASSERT_TRUE(sync_value.ok());
  EXPECT_EQ(**async_value, **sync_value);

  // Coordinate validation happens before anything is dispatched.
  EXPECT_TRUE(
      (*async_store)->ReadCellAsync(m, 9, 0, 0).status().IsInvalidArgument());

  // A prefetch probe loads the cell without touching demand statistics.
  CacheStats before = (*async_store)->cache_stats();
  auto probe = (*async_store)->ReadCellAsync(m, 1, 0, 0, LoadKind::kPrefetch);
  ASSERT_TRUE(probe.ok());
  ASSERT_TRUE(probe->Wait().ok());
  CacheStats after = (*async_store)->cache_stats();
  EXPECT_EQ(after.prefetch_issued, before.prefetch_issued + 1);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

TEST_F(StorageManagerTest, ReadPlannedCellsLoadsEveryTile) {
  VideoMetadata m = StoreSample("video", 2);
  StorageOptions options;
  options.env = env_.get();
  options.root = "/store";
  options.io_threads = 2;
  auto store = StorageManager::Open(options);
  ASSERT_TRUE(store.ok());

  std::vector<int> plan(m.tile_count(), 0);
  plan[1] = 1;
  ASSERT_TRUE((*store)->ReadPlannedCells(m, 1, plan).ok());
  CacheStats stats = (*store)->cache_stats();
  EXPECT_EQ(stats.misses, 2u);  // one cold load per tile

  // The batch warmed the cache: repeating it is all hits, and the cells
  // match what the synchronous path reads.
  ASSERT_TRUE((*store)->ReadPlannedCells(m, 1, plan).ok());
  EXPECT_EQ((*store)->cache_stats().hits, 2u);
  for (int tile = 0; tile < m.tile_count(); ++tile) {
    auto batched = (*store)->ReadCell(m, 1, tile, plan[tile]);
    ASSERT_TRUE(batched.ok());
    auto direct = store_->ReadCell(m, 1, tile, plan[tile]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(**batched, **direct);
  }

  // A plan must cover every tile.
  EXPECT_TRUE((*store)->ReadPlannedCells(m, 1, {0}).IsInvalidArgument());
}

TEST_F(StorageManagerTest, PrefetcherWarmsPredictedCells) {
  VideoMetadata m = StoreSample("video", 2);
  StorageOptions options;
  options.env = env_.get();
  options.root = "/store";
  options.io_threads = 2;
  auto store = StorageManager::Open(options);
  ASSERT_TRUE(store.ok());

  PrefetcherOptions prefetch_options;
  prefetch_options.mode = PrefetchMode::kPredict;
  PredictivePrefetcher prefetcher(store->get(), prefetch_options);

  PrefetchHint hint;
  hint.valid = true;
  hint.segment = 0;
  hint.fov_yaw = 2 * kPi;  // whole panorama in view: every tile qualifies
  hint.fov_pitch = kPi;
  hint.high_quality = 0;
  prefetcher.EnqueueSegment(m, hint, /*popularity=*/nullptr,
                            /*deadline=*/10.0);
  // 2 viewport tiles at the high rung + 2 backfill tiles at the low rung.
  EXPECT_EQ(prefetcher.stats().enqueued, 4u);
  prefetcher.Pump(/*now=*/0.0);
  prefetcher.Drain();
  EXPECT_EQ(prefetcher.stats().dispatched, 4u);

  // The speculative loads landed: demand reads are now pure hits credited
  // to the prefetcher.
  CacheStats stats = (*store)->cache_stats();
  EXPECT_EQ(stats.prefetch_issued, 4u);
  ASSERT_TRUE((*store)->ReadCell(m, 0, 0, 0).ok());
  ASSERT_TRUE((*store)->ReadCell(m, 0, 1, 1).ok());
  stats = (*store)->cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.prefetch_hits, 2u);

  // Hints past their deadline are cancelled, not dispatched.
  hint.segment = 1;
  prefetcher.EnqueueSegment(m, hint, nullptr, /*deadline=*/1.0);
  prefetcher.Pump(/*now=*/2.0);
  EXPECT_EQ(prefetcher.stats().dispatched, 4u);
  EXPECT_EQ(prefetcher.stats().cancelled, 4u);
  prefetcher.Drain();
}

TEST_F(StorageManagerTest, DropRemovesVideo) {
  StoreSample("gone");
  ASSERT_TRUE(store_->DropVideo("gone").ok());
  EXPECT_TRUE(store_->GetVideo("gone").status().IsNotFound());
  EXPECT_TRUE(store_->DropVideo("gone").IsNotFound());
  auto videos = store_->ListVideos();
  ASSERT_TRUE(videos.ok());
  EXPECT_TRUE(videos->empty());
}

TEST_F(StorageManagerTest, UncommittedVersionInvisible) {
  VideoMetadata layout;
  layout.name = "wip";
  layout.width = 64;
  layout.height = 32;
  layout.frames_per_segment = 4;
  layout.ladder = {{"only", 30}};
  auto writer = store_->NewVideoWriter(layout);
  ASSERT_TRUE(writer.ok());
  std::vector<std::vector<uint8_t>> cells = {std::vector<uint8_t>(10, 1)};
  ASSERT_TRUE((*writer)->AddSegment(4, cells).ok());
  // Not committed: invisible.
  EXPECT_TRUE(store_->GetVideo("wip").status().IsNotFound());
  ASSERT_TRUE((*writer)->Commit().ok());
  EXPECT_TRUE(store_->GetVideo("wip").ok());
}

TEST_F(StorageManagerTest, WriterValidatesCellCount) {
  VideoMetadata layout;
  layout.name = "bad";
  layout.width = 64;
  layout.height = 32;
  layout.frames_per_segment = 4;
  layout.tile_cols = 2;
  layout.ladder = {{"only", 30}};
  auto writer = store_->NewVideoWriter(layout);
  ASSERT_TRUE(writer.ok());
  std::vector<std::vector<uint8_t>> too_few = {std::vector<uint8_t>(10, 1)};
  EXPECT_TRUE((*writer)->AddSegment(4, too_few).IsInvalidArgument());
}

TEST_F(StorageManagerTest, OpenValidatesOptions) {
  StorageOptions options;
  options.env = nullptr;
  options.root = "/x";
  EXPECT_FALSE(StorageManager::Open(options).ok());
  options.env = env_.get();
  options.root = "";
  EXPECT_FALSE(StorageManager::Open(options).ok());
}

// ---------------------------------------------------------- Monolithic/GOP

class MonolithicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    SceneOptions scene_options;
    scene_options.width = 64;
    scene_options.height = 32;
    auto scene = NewVeniceScene(scene_options);
    auto frames = RenderScene(*scene, 24);
    EncoderOptions options;
    options.width = 64;
    options.height = 32;
    options.gop_length = 8;
    options.qp = 30;
    auto video = EncodeVideo(frames, options);
    ASSERT_TRUE(video.ok());
    video_ = std::move(*video);
  }

  std::unique_ptr<Env> env_;
  EncodedVideo video_;
};

TEST_F(MonolithicTest, IndexCoversAllFrames) {
  auto index = WriteMonolithicStream(env_.get(), "/mono.vcc", video_);
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->entries.size(), 3u);  // 24 frames / 8-frame GOPs
  for (uint32_t f = 0; f < 24; ++f) {
    EXPECT_TRUE(index->Lookup(f).ok()) << "frame " << f;
  }
  EXPECT_TRUE(index->Lookup(24).status().IsNotFound());
}

TEST_F(MonolithicTest, IndexedReadMatchesLinearRead) {
  auto index = WriteMonolithicStream(env_.get(), "/mono.vcc", video_);
  ASSERT_TRUE(index.ok());
  auto indexed = ReadFrameRangeIndexed(env_.get(), "/mono.vcc", *index, 9, 12);
  auto linear = ReadFrameRangeLinear(env_.get(), "/mono.vcc", 9, 12);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(linear.ok());
  EXPECT_EQ(indexed->first_frame, 8u);
  EXPECT_EQ(linear->first_frame, 8u);
  ASSERT_EQ(indexed->frames.size(), linear->frames.size());
  for (size_t i = 0; i < indexed->frames.size(); ++i) {
    EXPECT_EQ(indexed->frames[i].payload, linear->frames[i].payload);
  }
}

TEST_F(MonolithicTest, IndexedReadTouchesFewerBytes) {
  auto index = WriteMonolithicStream(env_.get(), "/mono.vcc", video_);
  ASSERT_TRUE(index.ok());
  auto indexed = ReadFrameRangeIndexed(env_.get(), "/mono.vcc", *index, 20, 23);
  auto linear = ReadFrameRangeLinear(env_.get(), "/mono.vcc", 20, 23);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(linear.ok());
  EXPECT_LT(indexed->bytes_read, linear->bytes_read);
}

TEST(LruCacheTest, ConcurrentAccessIsSafe) {
  // Hammer one cache from several threads: no crashes, no lost entries
  // beyond capacity-driven eviction, consistent stats.
  LruCache cache(10'000);
  constexpr int kThreads = 4;
  constexpr int kOps = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        PackedCellKey key = 100 + (t * 7 + i) % 50;
        if (i % 3 == 0) {
          cache.Put(key, Bytes(100, static_cast<uint8_t>(i)));
        } else if (i % 7 == 0) {
          cache.Erase(key);
        } else {
          auto v = cache.Get(key);
          if (v) {
            // Values are immutable snapshots; size always intact.
            EXPECT_EQ(v->size(), 100u);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  CacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes_cached, 10'000u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}


// ---------------------------------------------------- Sharding and tiering

TEST(ShardMapTest, DeterministicAndInRange) {
  ShardMap a(4), b(4);
  for (int i = 0; i < 1000; ++i) {
    std::string key = "cell" + std::to_string(i);
    int shard = a.ShardFor(key);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    EXPECT_EQ(shard, b.ShardFor(key)) << "same config must map identically";
  }
  ShardMap one(1);
  EXPECT_EQ(one.ShardFor("anything"), 0);
}

TEST(ShardMapTest, SpreadsKeysAcrossShards) {
  constexpr int kShards = 8;
  ShardMap map(kShards);
  std::vector<int> counts(kShards, 0);
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[map.ShardFor("video|dir|" + std::to_string(i))];
  }
  for (int shard = 0; shard < kShards; ++shard) {
    // Virtual nodes keep the split near uniform; allow a generous band.
    EXPECT_GT(counts[shard], kKeys / kShards / 3) << "shard " << shard;
    EXPECT_LT(counts[shard], kKeys / kShards * 3) << "shard " << shard;
  }
}

TEST(ShardMapTest, GrowingRemapsOnlyAFraction) {
  // The consistent-hash promise: adding a shard moves about 1/(N+1) of the
  // keys, not all of them — a scale-out keeps most of the L2 warm.
  ShardMap before(4), after(5);
  constexpr int kKeys = 20000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    std::string key = "video|dir|" + std::to_string(i);
    if (before.ShardFor(key) != after.ShardFor(key)) ++moved;
  }
  EXPECT_GT(moved, 0) << "the new shard must own something";
  EXPECT_LT(moved, kKeys / 2) << "growing 4->5 must not reshuffle the world";
}

TEST(LruCacheTest, OversizeRejectionCountsAndStillDeliversSync) {
  // Regression: a value larger than the whole cache used to be dropped
  // silently. It must be counted — and GetOrCompute must still hand the
  // loaded value to the caller even though it cannot be cached.
  LruCache cache(50);
  int loads = 0;
  auto loader = [&loads]() -> Result<LruCache::Value> {
    ++loads;
    return Bytes(100, 9);
  };
  auto value = cache.GetOrCompute(5, loader);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ((*value)->size(), 100u);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.rejected_oversize, 1u);
  EXPECT_EQ(stats.bytes_cached, 0u);

  // Not cached, so the demand path visibly re-loads (and re-counts).
  value = cache.GetOrCompute(5, loader);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(loads, 2);
  EXPECT_EQ(cache.stats().rejected_oversize, 2u);

  // Put() rejections count too.
  cache.Put(6, Bytes(200, 1));
  EXPECT_EQ(cache.stats().rejected_oversize, 3u);
}

TEST(LruCacheAsyncTest, OversizeRejectionStillDeliversToAsyncWaiters) {
  LruCache cache(50);
  ThreadPool pool(2);
  auto handle = cache.GetOrComputeAsync(
      5, []() -> Result<LruCache::Value> { return Bytes(100, 3); }, &pool,
      LoadKind::kDemand);
  auto value = handle.Wait();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ((*value)->size(), 100u);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.rejected_oversize, 1u);
  EXPECT_EQ(stats.bytes_cached, 0u);

  // An oversize *prefetch* is speculation that can never pay off from this
  // cache: it closes as wasted, keeping issued == hits + wasted honest.
  ASSERT_TRUE(cache
                  .GetOrComputeAsync(
                      7,
                      []() -> Result<LruCache::Value> { return Bytes(99, 1); },
                      &pool, LoadKind::kPrefetch)
                  .Wait()
                  .ok());
  stats = cache.stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_wasted, 1u);
  EXPECT_EQ(stats.rejected_oversize, 2u);
}

TEST(LruCacheAsyncTest, FailedPrefetchCountsWasted) {
  LruCache cache(1 << 16);
  ThreadPool pool(1);
  ASSERT_FALSE(cache
                   .GetOrComputeAsync(
                       4,
                       []() -> Result<LruCache::Value> {
                         return Status::IOError("backing store down");
                       },
                       &pool, LoadKind::kPrefetch)
                   .Wait()
                   .ok());
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_wasted, 1u);
  EXPECT_EQ(stats.prefetch_hits, 0u);
}

TEST(LruCacheAsyncTest, PutDisplacingPrefetchedEntryCountsWasted) {
  LruCache cache(1 << 16);
  // Null pool: the prefetch resolves inline, leaving a tagged entry.
  ASSERT_TRUE(cache
                  .GetOrComputeAsync(
                      4,
                      []() -> Result<LruCache::Value> { return Bytes(64, 1); },
                      nullptr, LoadKind::kPrefetch)
                  .Wait()
                  .ok());
  // A direct Put replaces the never-consumed speculation: wasted, once.
  cache.Put(4, Bytes(64, 2));
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetch_wasted, 1u);
  cache.Clear();
  EXPECT_EQ(cache.stats().prefetch_wasted, 1u) << "must not double-count";
  EXPECT_EQ(cache.stats().prefetch_issued, 1u);
}

TEST(LruCacheAsyncTest, PrefetchAttributionInvariantRandomized) {
  // Satellite audit: over a randomized mix of demand reads, prefetch
  // probes, failing loads, oversize values, erases, and clears, every
  // issued prefetch must end up as exactly one of {hit, wasted} once the
  // pipeline is drained and the cache cleared.
  std::mt19937 rng(20260808u);
  LruCache cache(2048);
  ThreadPool pool(3);
  constexpr int kKeys = 12;
  for (int i = 0; i < 4000; ++i) {
    int key = static_cast<int>(rng() % kKeys);
    PackedCellKey name = 900 + key;
    size_t size = key % 5 == 4 ? 4096 : 128 + (key * 37) % 512;  // some huge
    bool fail = key % 6 == 5;
    auto loader = [size, fail, key]() -> Result<LruCache::Value> {
      if (fail) return Status::IOError("flaky backing store");
      return Bytes(size, static_cast<uint8_t>(key));
    };
    switch (rng() % 6) {
      case 0:
        cache.GetOrCompute(name, loader);
        break;
      case 1:
        cache.GetOrComputeAsync(name, loader, &pool, LoadKind::kDemand);
        break;
      case 2:
      case 3:
        cache.GetOrComputeAsync(name, loader, &pool, LoadKind::kPrefetch);
        break;
      case 4:
        cache.Erase(name);
        break;
      default:
        if (rng() % 16 == 0) cache.Clear();
        break;
    }
  }
  pool.WaitIdle();
  cache.Clear();
  CacheStats stats = cache.stats();
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_EQ(stats.prefetch_issued,
            stats.prefetch_hits + stats.prefetch_wasted);
}

TEST(TieredCacheTest, L1OverL2ServesAndAccountsBothTiers) {
  LruCache l2(1 << 20);
  TieredCache node_a(1 << 16, &l2);
  TieredCache node_b(1 << 16, &l2);
  int loads = 0;
  auto loader = [&loads]() -> Result<LruCache::Value> {
    ++loads;
    return Bytes(256, 7);
  };

  // Cold read on node A: misses both tiers, runs the loader once.
  bool was_hit = true;
  ASSERT_TRUE(node_a.GetOrCompute(11, loader, &was_hit).ok());
  EXPECT_FALSE(was_hit);
  EXPECT_EQ(loads, 1);

  // Warm on node A: pure L1 hit, the L2 is not consulted.
  ASSERT_TRUE(node_a.GetOrCompute(11, loader, &was_hit).ok());
  EXPECT_TRUE(was_hit);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(node_a.l1_stats().hits, 1u);

  // Cold on node B: its private L1 misses, but the shared L2 has it — the
  // backend loader does not run again. Cross-node sharing via the L2.
  ASSERT_TRUE(node_b.GetOrCompute(11, loader, &was_hit).ok());
  EXPECT_FALSE(was_hit) << "hit means node-local L1";
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(node_b.l1_stats().misses, 1u);
  EXPECT_EQ(l2.stats().hits, 1u);
  EXPECT_EQ(l2.stats().misses, 1u);
}

TEST(TieredCacheTest, PromotionCreditsL2PrefetchNotWasted) {
  // Satellite audit target: a prefetch fills both tiers tagged; the demand
  // read consumes the L1 copy. Without the tier-promotion credit the L2
  // copy would stay tagged and its eventual eviction would count the same
  // (consumed!) speculation as wasted.
  LruCache l2(1 << 20);
  TieredCache node(1 << 16, &l2);
  auto handle = node.GetOrComputeAsync(
      11, []() -> Result<LruCache::Value> { return Bytes(128, 4); },
      /*pool=*/nullptr, LoadKind::kPrefetch);
  ASSERT_TRUE(handle.Wait().ok());
  EXPECT_EQ(node.l1_stats().prefetch_issued, 1u);
  EXPECT_EQ(l2.stats().prefetch_issued, 1u);

  bool was_hit = false;
  ASSERT_TRUE(node.GetOrCompute(
                      11,
                      []() -> Result<LruCache::Value> {
                        ADD_FAILURE() << "prefetched cell must not reload";
                        return Status::Internal("unexpected load");
                      },
                      &was_hit)
                  .ok());
  EXPECT_TRUE(was_hit);

  // Drop everything: neither tier may call the consumed speculation wasted.
  node.ClearL1();
  l2.Clear();
  EXPECT_EQ(node.l1_stats().prefetch_hits, 1u);
  EXPECT_EQ(node.l1_stats().prefetch_wasted, 0u);
  EXPECT_EQ(l2.stats().prefetch_hits, 1u);
  EXPECT_EQ(l2.stats().prefetch_wasted, 0u);
}

TEST_F(StorageManagerTest, ShardedStoreNodesShareL2AndMatchDirectReads) {
  VideoMetadata m = StoreSample("video", 2);

  ShardedStoreOptions options;
  options.backend.env = env_.get();
  options.backend.root = "/store";
  options.backend.io_threads = 2;
  options.shards = 3;
  options.l2_capacity_bytes = 1 << 20;
  auto store = ShardedStore::Open(options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->shard_count(), 3);

  auto node_a = (*store)->CreateNode(1 << 16);
  auto node_b = (*store)->CreateNode(1 << 16);

  // Every cell a node reads matches the direct single-store read.
  for (int segment = 0; segment < m.segment_count(); ++segment) {
    for (int tile = 0; tile < m.tile_count(); ++tile) {
      for (int quality = 0; quality < m.quality_count(); ++quality) {
        auto sharded = node_a->ReadCell(m, segment, tile, quality);
        ASSERT_TRUE(sharded.ok());
        auto direct = store_->ReadCell(m, segment, tile, quality);
        ASSERT_TRUE(direct.ok());
        EXPECT_EQ(**sharded, **direct);
      }
    }
  }

  // Node B reads one planned segment: its L1 is cold but node A warmed the
  // shared L2, so no backend read happens (L2 hits cover every tile).
  CacheStats l2_before = (*store)->l2_stats();
  std::vector<int> plan(m.tile_count(), 0);
  ASSERT_TRUE(node_b->ReadPlannedCells(m, 0, plan).ok());
  CacheStats l2_after = (*store)->l2_stats();
  EXPECT_EQ(l2_after.hits - l2_before.hits,
            static_cast<uint64_t>(m.tile_count()));
  EXPECT_EQ(l2_after.misses, l2_before.misses);
  EXPECT_EQ(node_b->cache_stats().misses,
            static_cast<uint64_t>(m.tile_count()));

  // Range validation still happens before any dispatch.
  EXPECT_TRUE(node_a->ReadCell(m, 9, 0, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      node_a->ReadCellAsync(m, 0, 9, 0).status().IsInvalidArgument());
}

// A CellSource that records dispatch order and resolves loads inline,
// for pinning the prefetcher's queue discipline.
class RecordingCellSource : public CellSource {
 public:
  Result<LruCache::Value> ReadCell(const VideoMetadata& metadata, int segment,
                                   int tile, int quality) override {
    loads.push_back(CellKey{segment, tile, quality});
    return Bytes(8, 0);
  }
  Result<LruCache::AsyncHandle> ReadCellAsync(const VideoMetadata& metadata,
                                              int segment, int tile,
                                              int quality,
                                              LoadKind kind) override {
    loads.push_back(CellKey{segment, tile, quality});
    return cache_.GetOrComputeAsync(
        CellKey{segment, tile, quality}.Packed(metadata),
        []() -> Result<LruCache::Value> { return Bytes(8, 0); },
        /*pool=*/nullptr, kind);
  }
  Status ReadPlannedCells(const VideoMetadata& metadata, int segment,
                          const std::vector<int>& tile_qualities) override {
    return Status::OK();
  }
  ThreadPool* io_pool() const override { return nullptr; }
  CacheStats cache_stats() const override { return cache_.stats(); }

  std::vector<CellKey> loads;

 private:
  LruCache cache_{0};  // uncached: every dispatch is observable
};

TEST_F(StorageManagerTest, PrefetcherDispatchesBestFirstIncludingLastElement) {
  VideoMetadata m = StoreSample("video", 1);

  // Teach the popularity model to love exactly one tile, so the two
  // viewport candidates get distinct scores and the dispatch order is
  // forced — regardless of the order they were enqueued in.
  PopularityModel popularity(m.tile_grid(), m.segment_duration_seconds(),
                             m.segment_count());
  popularity.Observe(0.05, Orientation{});
  popularity.EndViewer();
  std::vector<double> probs = popularity.TileProbabilities(0);
  ASSERT_EQ(probs.size(), 2u);
  int hot = probs[0] > probs[1] ? 0 : 1;
  int cold = 1 - hot;
  ASSERT_GT(probs[hot], probs[cold]);

  RecordingCellSource source;
  PrefetcherOptions options;
  options.mode = PrefetchMode::kPredict;
  PredictivePrefetcher prefetcher(&source, options);

  PrefetchHint hint;
  hint.valid = true;
  hint.segment = 0;
  hint.fov_yaw = 2 * kPi;  // whole panorama: both tiles are candidates
  hint.fov_pitch = kPi;
  hint.high_quality = 0;
  prefetcher.EnqueueSegment(m, hint, &popularity, /*deadline=*/10.0);
  ASSERT_EQ(prefetcher.stats().enqueued, 4u);  // 2 viewport + 2 backfill

  // Inline handles resolve immediately, so one Pump dispatches the whole
  // queue — including the selection where the best request is the last
  // element left (the old swap-with-back self-move spot).
  prefetcher.Pump(/*now=*/0.0);
  EXPECT_EQ(prefetcher.stats().dispatched, 4u);
  ASSERT_EQ(source.loads.size(), 4u);
  // Strictly score-descending: hot viewport tile, cold viewport tile, then
  // the backfill pair in the same popularity order.
  EXPECT_EQ(source.loads[0], (CellKey{0, hot, 0}));
  EXPECT_EQ(source.loads[1], (CellKey{0, cold, 0}));
  EXPECT_EQ(source.loads[2], (CellKey{0, hot, 1}));
  EXPECT_EQ(source.loads[3], (CellKey{0, cold, 1}));
  prefetcher.Drain();
}

TEST_F(StorageManagerTest, PrefetcherStaleCancelHandlesLastElement) {
  VideoMetadata m = StoreSample("video", 2);
  RecordingCellSource source;
  PrefetcherOptions options;
  options.mode = PrefetchMode::kPredict;
  PredictivePrefetcher prefetcher(&source, options);

  PrefetchHint hint;
  hint.valid = true;
  hint.segment = 0;
  hint.fov_yaw = 2 * kPi;
  hint.fov_pitch = kPi;
  hint.high_quality = 0;
  // Two batches with distinct deadlines; the stale sweep removes the first
  // batch, repeatedly compacting against the queue's back — including the
  // step where the victim *is* the back (the guarded self-move).
  prefetcher.EnqueueSegment(m, hint, nullptr, /*deadline=*/1.0);
  hint.segment = 1;
  prefetcher.EnqueueSegment(m, hint, nullptr, /*deadline=*/5.0);
  ASSERT_EQ(prefetcher.stats().enqueued, 8u);

  prefetcher.Pump(/*now=*/2.0);  // past batch 1's deadline, before batch 2's
  EXPECT_EQ(prefetcher.stats().cancelled, 4u);
  EXPECT_EQ(prefetcher.stats().dispatched, 4u);
  for (const CellKey& cell : source.loads) {
    EXPECT_EQ(cell.segment, 1) << "stale segment-0 requests must not load";
  }

  // Cancelling cleared the dedupe set: the same cells can be re-requested.
  hint.segment = 0;
  prefetcher.EnqueueSegment(m, hint, nullptr, /*deadline=*/5.0);
  EXPECT_EQ(prefetcher.stats().enqueued, 12u);
  prefetcher.Pump(/*now=*/3.0);
  EXPECT_EQ(prefetcher.stats().dispatched, 8u);
  prefetcher.Drain();
}

// ------------------------------------------------------- Live checkpoints

TEST_F(StorageManagerTest, CheckpointPublishesAndSharesDataDir) {
  VideoMetadata layout;
  layout.name = "live";
  layout.width = 64;
  layout.height = 32;
  layout.frames_per_segment = 4;
  layout.ladder = {{"only", 30}};
  auto writer = store_->NewVideoWriter(layout);
  ASSERT_TRUE(writer.ok());

  std::vector<std::vector<uint8_t>> cells = {std::vector<uint8_t>(20, 1)};
  ASSERT_TRUE((*writer)->AddSegment(4, cells).ok());
  auto v1 = (*writer)->CommitCheckpoint();
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1u);

  // Version 1 is visible, flagged streaming, and readable.
  auto m1 = store_->GetVideoVersion("live", 1);
  ASSERT_TRUE(m1.ok());
  EXPECT_TRUE(m1->streaming);
  EXPECT_EQ(m1->segment_count(), 1);
  EXPECT_TRUE(store_->ReadCell(*m1, 0, 0, 0).ok());

  // Append more and finish: version 2, same data dir, not streaming.
  cells[0] = std::vector<uint8_t>(30, 2);
  ASSERT_TRUE((*writer)->AddSegment(4, cells).ok());
  auto v2 = (*writer)->Commit();
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);
  auto m2 = store_->GetVideoVersion("live", 2);
  ASSERT_TRUE(m2.ok());
  EXPECT_FALSE(m2->streaming);
  EXPECT_EQ(m2->segment_count(), 2);
  EXPECT_EQ(m2->DataDir(), m1->DataDir()) << "checkpoints must share cells";

  // The old version still reads its snapshot; the new one reads both.
  EXPECT_TRUE(store_->ReadCell(*m1, 0, 0, 0).ok());
  EXPECT_TRUE(store_->ReadCell(*m2, 1, 0, 0).ok());
  // Segment 1 is not part of version 1's snapshot.
  EXPECT_TRUE(store_->ReadCell(*m1, 1, 0, 0).status().IsInvalidArgument());
}

TEST_F(StorageManagerTest, CheckpointRequiresASegment) {
  VideoMetadata layout;
  layout.name = "early";
  layout.width = 64;
  layout.height = 32;
  layout.frames_per_segment = 4;
  layout.ladder = {{"only", 30}};
  auto writer = store_->NewVideoWriter(layout);
  ASSERT_TRUE(writer.ok());
  // Zero segments fails metadata validation inside the checkpoint.
  EXPECT_FALSE((*writer)->CommitCheckpoint().ok());
}

TEST_F(StorageManagerTest, WriterUnusableAfterCommit) {
  VideoMetadata m = StoreSample("done", 1);
  (void)m;
  VideoMetadata layout;
  layout.name = "done2";
  layout.width = 64;
  layout.height = 32;
  layout.frames_per_segment = 4;
  layout.ladder = {{"only", 30}};
  auto writer = store_->NewVideoWriter(layout);
  std::vector<std::vector<uint8_t>> cells = {std::vector<uint8_t>(10, 1)};
  ASSERT_TRUE((*writer)->AddSegment(4, cells).ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  EXPECT_TRUE((*writer)->AddSegment(4, cells).IsAborted());
  EXPECT_TRUE((*writer)->Commit().status().IsAborted());
  EXPECT_TRUE((*writer)->CommitCheckpoint().status().IsAborted());
}

TEST(VideoMetadataTest, DataDirDefaultsAndRoundTrips) {
  VideoMetadata m;
  m.version = 7;
  EXPECT_EQ(m.DataDir(), "v7");
  m.data_dir = "v3";
  EXPECT_EQ(m.DataDir(), "v3");
}

// ------------------------------------------------------------ Packed keys

TEST(PackedCellKeyTest, DistinctCoordinatesDistinctKeys) {
  VideoMetadata m = SampleMetadata();
  std::set<PackedCellKey> seen;
  for (int segment = 0; segment < m.segment_count(); ++segment) {
    for (int tile = 0; tile < m.tile_count(); ++tile) {
      for (int quality = 0; quality < m.quality_count(); ++quality) {
        PackedCellKey key = CellKey{segment, tile, quality}.Packed(m);
        EXPECT_TRUE(seen.insert(key).second)
            << CellKey{segment, tile, quality}.DebugString(m);
        // Stable: repacking the same coordinates gives the same key.
        EXPECT_EQ(key, (CellKey{segment, tile, quality}.Packed(m)));
      }
    }
  }
  // A different video never collides with this one's keys.
  VideoMetadata other = SampleMetadata();
  other.name = "rialto";
  EXPECT_EQ(seen.count(CellKey{0, 0, 0}.Packed(other)), 0u);
}

TEST(PackedCellKeyTest, KeyspaceSharedAcrossCheckpointVersions) {
  // Live checkpoints publish new versions over one data directory; their
  // cells are the same files, so their packed keys must coincide.
  VideoMetadata v1 = SampleMetadata();
  v1.data_dir = "v1";
  VideoMetadata v2 = v1;
  v2.version = 2;  // same data_dir
  EXPECT_EQ((CellKey{0, 1, 2}.Packed(v1)), (CellKey{0, 1, 2}.Packed(v2)));

  // Distinct data dirs are distinct keyspaces even under one name. (Built
  // fresh: copying carries the keyspace memo by design — identity fields
  // must not change after a metadata's cells are first addressed.)
  VideoMetadata forked = SampleMetadata();
  forked.data_dir = "v9";
  EXPECT_NE((CellKey{0, 1, 2}.Packed(v1)), (CellKey{0, 1, 2}.Packed(forked)));
}

TEST(PackedCellKeyTest, OverflowingCoordinatesUseExactEscapePath) {
  VideoMetadata m = SampleMetadata();
  m.name = "marathon";
  // A segment index past the 22-bit field cannot be packed positionally.
  CellKey huge{1 << 22, 0, 0};
  PackedCellKey escaped = huge.Packed(m);
  EXPECT_EQ(escaped, huge.Packed(m)) << "escape keys must be stable";
  EXPECT_NE(escaped, (CellKey{0, 0, 0}.Packed(m)));
  // Escape keys live below the fast-path range (keyspace bits all zero),
  // so the two regimes can never collide.
  EXPECT_EQ(escaped >> (64 - kPackedKeyspaceBits), 0u);
  EXPECT_NE((CellKey{0, 0, 0}.Packed(m)) >> (64 - kPackedKeyspaceBits), 0u);
  // Distinct overflowing coordinates stay distinct.
  EXPECT_NE(escaped, (CellKey{(1 << 22) + 1, 0, 0}.Packed(m)));
}

TEST(CellKeyHashTest, UnifiedIndexHashesOncePerHit) {
  // The point of collapsing the cache's dual string-keyed maps into one
  // integer-keyed slot table: a lookup — hit, coalesce, or miss-becomes-
  // loader — hashes the key exactly once.
  LruCache cache(1 << 16);
  cache.Put(42, Bytes(64, 1));

  uint64_t before = CellKeyHash::invocations.load();
  EXPECT_NE(cache.Get(42), nullptr);
  EXPECT_EQ(CellKeyHash::invocations.load() - before, 1u);

  before = CellKeyHash::invocations.load();
  auto hit = cache.GetOrCompute(42, []() -> Result<LruCache::Value> {
    ADD_FAILURE() << "cached key must not reload";
    return Status::Internal("unexpected");
  });
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(CellKeyHash::invocations.load() - before, 1u);

  // A miss hashes twice in total: the slot lookup and the completion that
  // publishes the loaded value back into the slot.
  before = CellKeyHash::invocations.load();
  auto miss = cache.GetOrCompute(
      43, []() -> Result<LruCache::Value> { return Bytes(64, 2); });
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(CellKeyHash::invocations.load() - before, 2u);
}

// ------------------------------------------------------ Admission control

TEST(LruCacheTest, SecondTouchAdmissionFiltersOneTouchWonders) {
  LruCacheOptions options;
  options.capacity_bytes = 1 << 16;
  options.admit_on_second_touch = true;
  LruCache cache(options);
  int loads = 0;
  auto loader = [&loads]() -> Result<LruCache::Value> {
    ++loads;
    return Bytes(128, 5);
  };

  // First touch: delivered but not cached — the key parks in the filter.
  auto first = cache.GetOrCompute(7, loader);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->size(), 128u);
  EXPECT_EQ(cache.stats().bytes_cached, 0u);
  EXPECT_EQ(cache.stats().admission_rejects, 1u);

  // Second touch: admitted, cached, and the filter forgets the key.
  auto second = cache.GetOrCompute(7, loader);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(loads, 2);
  EXPECT_EQ(cache.stats().bytes_cached, 128u);
  EXPECT_EQ(cache.stats().admission_rejects, 1u);

  // Third: plain hit.
  ASSERT_TRUE(cache.GetOrCompute(7, loader).ok());
  EXPECT_EQ(loads, 2);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Replacing an already-cached key is never filtered.
  cache.Put(7, Bytes(256, 6));
  EXPECT_EQ(cache.stats().bytes_cached, 256u);
  EXPECT_EQ(cache.stats().admission_rejects, 1u);
}

TEST(LruCacheTest, AdmissionPolicyNeverChangesDeliveredBytes) {
  // The policy only decides what is *retained*; every caller gets the same
  // bytes either way. Replay one randomized op sequence against a filtered
  // and an unfiltered cache and demand byte-identical deliveries.
  LruCacheOptions filtered;
  filtered.capacity_bytes = 4096;
  filtered.admit_on_second_touch = true;
  filtered.touch_filter_keys = 8;  // force wholesale filter clears too
  LruCache with(filtered);
  LruCache without(4096);

  std::mt19937 rng(123u);
  for (int i = 0; i < 2000; ++i) {
    PackedCellKey key = rng() % 32;
    auto loader = [key]() -> Result<LruCache::Value> {
      return Bytes(64 + key * 8, static_cast<uint8_t>(key));
    };
    auto a = with.GetOrCompute(key, loader);
    auto b = without.GetOrCompute(key, loader);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(**a, **b) << "admission policy changed delivered bytes";
  }
  EXPECT_GT(with.stats().admission_rejects, 0u);
  EXPECT_EQ(without.stats().admission_rejects, 0u);
}

TEST(LruCacheAsyncTest, AdmissionRejectedPrefetchCountsWasted) {
  LruCacheOptions options;
  options.capacity_bytes = 1 << 16;
  options.admit_on_second_touch = true;
  LruCache cache(options);
  // A first-touch prefetch is speculation the filter refuses to retain: it
  // can never serve a demand read from this cache, so it closes as wasted.
  ASSERT_TRUE(cache
                  .GetOrComputeAsync(
                      9,
                      []() -> Result<LruCache::Value> { return Bytes(32, 1); },
                      /*pool=*/nullptr, LoadKind::kPrefetch)
                  .Wait()
                  .ok());
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.admission_rejects, 1u);
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_wasted, 1u);
  EXPECT_EQ(stats.bytes_cached, 0u);
}

// ------------------------------------------------------- Prefetch churn

TEST_F(StorageManagerTest, PrefetcherDedupesRepeatHintsWithinTtl) {
  VideoMetadata m = StoreSample("video", 1);
  RecordingCellSource source;
  PrefetcherOptions options;
  options.mode = PrefetchMode::kPredict;
  options.dedupe_ttl_seconds = 2.0;
  PredictivePrefetcher prefetcher(&source, options);

  PrefetchHint hint;
  hint.valid = true;
  hint.segment = 0;
  hint.fov_yaw = 2 * kPi;
  hint.fov_pitch = kPi;
  hint.high_quality = 0;
  prefetcher.EnqueueSegment(m, hint, nullptr, /*deadline=*/10.0);
  uint64_t first = prefetcher.stats().enqueued;
  ASSERT_GT(first, 0u);

  // The same hint again (the 10k-viewer cohort case: many sessions aimed
  // at one segment) adds nothing — every cell is suppressed by the TTL.
  prefetcher.EnqueueSegment(m, hint, nullptr, /*deadline=*/10.0);
  EXPECT_EQ(prefetcher.stats().enqueued, first);
  EXPECT_EQ(prefetcher.stats().deduped, first);

  // Dispatch does not forget: within the TTL the hint stays suppressed
  // even though the queue is empty.
  prefetcher.Pump(/*now=*/0.5);
  EXPECT_EQ(prefetcher.stats().dispatched, first);
  prefetcher.EnqueueSegment(m, hint, nullptr, /*deadline=*/10.0);
  EXPECT_EQ(prefetcher.stats().enqueued, first);
  EXPECT_EQ(prefetcher.stats().deduped, 2 * first);

  // Past the TTL the same cells are fair game again.
  prefetcher.Pump(/*now=*/3.0);
  prefetcher.EnqueueSegment(m, hint, nullptr, /*deadline=*/10.0);
  EXPECT_EQ(prefetcher.stats().enqueued, 2 * first);
  prefetcher.Drain();
}

TEST_F(StorageManagerTest, PrefetcherSkipsHintsAlreadyPastDeadline) {
  VideoMetadata m = StoreSample("video", 1);
  RecordingCellSource source;
  PrefetcherOptions options;
  options.mode = PrefetchMode::kPredict;
  PredictivePrefetcher prefetcher(&source, options);

  PrefetchHint hint;
  hint.valid = true;
  hint.segment = 0;
  hint.fov_yaw = 2 * kPi;
  hint.fov_pitch = kPi;
  hint.high_quality = 0;

  // Time has moved past the deadline: enqueueing would only create work
  // for the stale sweep to cancel, so the hint is dropped at the door.
  prefetcher.Pump(/*now=*/5.0);
  prefetcher.EnqueueSegment(m, hint, nullptr, /*deadline=*/4.0);
  EXPECT_EQ(prefetcher.stats().enqueued, 0u);
  EXPECT_GT(prefetcher.stats().stale_skipped, 0u);
  EXPECT_EQ(prefetcher.stats().CancellationRatio(), 0.0);
  prefetcher.Drain();
  EXPECT_TRUE(source.loads.empty());
}

TEST(ShardMapTest, PackedOverloadDeterministicAndSpreads) {
  ShardMap a(8), b(8);
  std::vector<int> counts(8, 0);
  for (uint64_t i = 0; i < 20000; ++i) {
    PackedCellKey key = (i << 24) | (i * 2654435761u & 0xffffff);
    int shard = a.ShardFor(key);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 8);
    EXPECT_EQ(shard, b.ShardFor(key)) << "same config must map identically";
    ++counts[shard];
  }
  for (int shard = 0; shard < 8; ++shard) {
    EXPECT_GT(counts[shard], 20000 / 8 / 3) << "shard " << shard;
    EXPECT_LT(counts[shard], 20000 / 8 * 3) << "shard " << shard;
  }
  ShardMap one(1);
  EXPECT_EQ(one.ShardFor(PackedCellKey{12345}), 0);
}

TEST_F(MonolithicTest, RangeValidation) {
  auto index = WriteMonolithicStream(env_.get(), "/mono.vcc", video_);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(ReadFrameRangeIndexed(env_.get(), "/mono.vcc", *index, 5, 2).ok());
  EXPECT_FALSE(
      ReadFrameRangeIndexed(env_.get(), "/mono.vcc", *index, 0, 99).ok());
  EXPECT_FALSE(ReadFrameRangeLinear(env_.get(), "/mono.vcc", 0, 99).ok());
}

}  // namespace
}  // namespace vc
