#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "query/parser.h"

// Deterministic fuzzing of the query text parser (closes ROADMAP item 6 for
// the last text surface): a corpus of valid pipelines — every stage kind,
// unions, nesting — is truncated at every length, peppered with seeded bit
// flips, token-mutilated with adversarial values, and pattern-filled, and
// every mutant goes through ParseQuery. The contract is totality: every
// input either parses or returns a clean error Status; crashes, hangs, and
// out-of-bounds access (the ASan/UBSan CI leg runs this suite) are the
// failures. Mutants that do parse must additionally reach a ToString()
// fixed point: parse → print → re-parse → print yields the same text, so
// the canonical form is stable even for inputs no generator ever emits.

namespace vc {
namespace {

std::vector<std::string> Corpus() {
  return {
      "scan(venice)",
      "scan(venice) | timeslice(5,10) | viewport(180,90,100,80) | "
      "quality(high)",
      "scan(a) | frames(0,47) | degrade(2) | encode(31) | store(out)",
      "scan(b) | quality(0) | encode | tofile(/tmp/out.vcc)",
      "union(scan(a) | timeslice(0,2) ; scan(b) | timeslice(0,2)) | encode",
      "union(scan(a) ; union(scan(b) ; scan(c)) | frames(1,2)) | "
      "viewport(-30.5,12.25,90,60) | degrade(low) | store(merged)",
  };
}

void DriveParser(const std::string& text) {
  auto parsed = ParseQuery(Slice(text));
  if (!parsed.ok()) return;
  // Whatever parsed must have a stable canonical form: its printed text
  // parses again and prints identically (a fixed point after one hop).
  std::string printed = parsed->ToString();
  auto reparsed = ParseQuery(Slice(printed));
  ASSERT_TRUE(reparsed.ok())
      << "canonical form failed to re-parse: " << printed;
  EXPECT_EQ(reparsed->ToString(), printed)
      << "ToString is not a fixed point for: " << text;
}

TEST(QueryFuzzTest, CorpusRoundTrips) {
  // The corpus itself must parse — otherwise the mutants below would all
  // take the early-return path and test nothing.
  for (const std::string& text : Corpus()) {
    auto parsed = ParseQuery(Slice(text));
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    DriveParser(text);
  }
}

TEST(QueryFuzzTest, TruncationsFailCleanly) {
  for (const std::string& text : Corpus()) {
    for (size_t keep = 0; keep <= text.size(); ++keep) {
      DriveParser(text.substr(0, keep));
    }
  }
}

TEST(QueryFuzzTest, BitFlipsFailCleanly) {
  Random rng(20260808);
  for (const std::string& text : Corpus()) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string mutant = text;
      int flips = 1 + static_cast<int>(rng.Uniform(6));
      for (int i = 0; i < flips; ++i) {
        size_t bit = rng.Uniform(static_cast<uint32_t>(mutant.size() * 8));
        mutant[bit / 8] = static_cast<char>(
            static_cast<uint8_t>(mutant[bit / 8]) ^ (1u << (bit % 8)));
      }
      DriveParser(mutant);
    }
  }
}

TEST(QueryFuzzTest, TokenSurgeryFailsCleanly) {
  // Structured mutations the bit flipper rarely lands on: delimiters
  // dropped or doubled, stage keywords swapped into argument position, and
  // arguments replaced with adversarial values (overflow, empty, nested
  // parens, keywords).
  const std::vector<std::string> poison = {
      "-1",    "4294967296", "999999999999999999999",
      "scan",  "union",      "encode",
      "1e308", "",           "NaN",
      "(",     ")",          "(((((((((((((((((((((((((((((((",
      ";",     "|",          "quality(high",
  };
  Random rng(424242);
  for (const std::string& text : Corpus()) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string mutant = text;
      switch (rng.Uniform(4)) {
        case 0: {  // delete one structural character
          const std::string structural = "(),;|";
          std::vector<size_t> spots;
          for (size_t i = 0; i < mutant.size(); ++i) {
            if (structural.find(mutant[i]) != std::string::npos) {
              spots.push_back(i);
            }
          }
          if (spots.empty()) break;
          mutant.erase(
              spots[rng.Uniform(static_cast<uint32_t>(spots.size()))], 1);
          break;
        }
        case 1: {  // duplicate one character
          size_t at = rng.Uniform(static_cast<uint32_t>(mutant.size()));
          mutant.insert(at, 1, mutant[at]);
          break;
        }
        case 2: {  // splice a poison token at a random position
          size_t at = rng.Uniform(static_cast<uint32_t>(mutant.size() + 1));
          mutant.insert(
              at, poison[rng.Uniform(static_cast<uint32_t>(poison.size()))]);
          break;
        }
        default: {  // replace one parenthesized argument list wholesale
          size_t open = mutant.find('(');
          if (open == std::string::npos) break;
          size_t close = mutant.find(')', open);
          if (close == std::string::npos) break;
          mutant = mutant.substr(0, open + 1) +
                   poison[rng.Uniform(static_cast<uint32_t>(poison.size()))] +
                   mutant.substr(close);
          break;
        }
      }
      DriveParser(mutant);
    }
  }
}

TEST(QueryFuzzTest, PatternFillsFailCleanly) {
  for (const std::string& text : Corpus()) {
    for (char fill : {'\0', '\xff', ' ', '9', '\n'}) {
      std::string mutant = text;
      // Keep the leading keyword so parsing reaches stage dispatch.
      for (size_t i = 5; i < mutant.size(); ++i) mutant[i] = fill;
      DriveParser(mutant);
    }
    // And the pure pattern string with no valid prefix at all.
    for (char fill : {'(', ')', '|', ';', ','}) {
      DriveParser(std::string(512, fill));
    }
  }
}

}  // namespace
}  // namespace vc
