#include <gtest/gtest.h>

#include <cmath>

#include "predict/accuracy.h"
#include "predict/head_trace.h"
#include "predict/popularity.h"
#include "predict/predictor.h"
#include "predict/trace_synthesizer.h"

namespace vc {
namespace {

// -------------------------------------------------------------- HeadTrace

TEST(HeadTraceTest, FromSamplesValidation) {
  EXPECT_FALSE(HeadTrace::FromSamples({}).ok());
  EXPECT_FALSE(
      HeadTrace::FromSamples({{-1.0, {}}, {0.0, {}}}).ok());
  EXPECT_FALSE(HeadTrace::FromSamples({{0.0, {}}, {0.0, {}}}).ok());
  EXPECT_TRUE(HeadTrace::FromSamples({{0.0, {}}, {1.0, {}}}).ok());
}

TEST(HeadTraceTest, InterpolationAndClamping) {
  auto trace = HeadTrace::FromSamples(
      {{0.0, {1.0, 1.0}}, {2.0, {2.0, 1.4}}});
  ASSERT_TRUE(trace.ok());
  Orientation mid = trace->At(1.0);
  EXPECT_NEAR(mid.yaw, 1.5, 1e-9);
  EXPECT_NEAR(mid.pitch, 1.2, 1e-9);
  // Clamped outside the range.
  EXPECT_NEAR(trace->At(-5.0).yaw, 1.0, 1e-9);
  EXPECT_NEAR(trace->At(99.0).yaw, 2.0, 1e-9);
}

TEST(HeadTraceTest, InterpolatesAcrossYawSeam) {
  auto trace = HeadTrace::FromSamples(
      {{0.0, {kTwoPi - 0.1, kPi / 2}}, {1.0, {0.1, kPi / 2}}});
  ASSERT_TRUE(trace.ok());
  // Midpoint is the seam itself, not yaw π.
  Orientation mid = trace->At(0.5);
  EXPECT_LT(std::min(mid.yaw, kTwoPi - mid.yaw), 0.01);
}

TEST(HeadTraceTest, CsvRoundTrip) {
  auto trace = HeadTrace::FromSamples(
      {{0.0, {0.5, 1.0}}, {0.5, {1.0, 1.5}}, {1.0, {6.0, 2.0}}});
  ASSERT_TRUE(trace.ok());
  std::string csv = trace->ToCsv();
  auto parsed = HeadTrace::FromCsv(Slice(csv));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(parsed->samples()[i].t, trace->samples()[i].t, 1e-6);
    EXPECT_NEAR(parsed->samples()[i].orientation.yaw,
                trace->samples()[i].orientation.yaw, 1e-6);
  }
}

TEST(HeadTraceTest, CsvRejectsGarbage) {
  std::string bad = "t,yaw,pitch\n0.0,nope\n";
  EXPECT_FALSE(HeadTrace::FromCsv(Slice(bad)).ok());
  std::string empty;
  EXPECT_FALSE(HeadTrace::FromCsv(Slice(empty)).ok());
}

// ------------------------------------------------------------ Synthesizer

TEST(TraceSynthesizerTest, ProducesRequestedShape) {
  TraceSynthOptions options;
  options.duration_seconds = 10;
  options.sample_rate_hz = 30;
  auto trace = SynthesizeTrace(options);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 301u);
  EXPECT_NEAR(trace->duration(), 10.0, 0.05);
  for (const TraceSample& s : trace->samples()) {
    EXPECT_GE(s.orientation.yaw, 0.0);
    EXPECT_LT(s.orientation.yaw, kTwoPi);
    EXPECT_GE(s.orientation.pitch, 0.0);
    EXPECT_LE(s.orientation.pitch, kPi);
  }
}

TEST(TraceSynthesizerTest, DeterministicPerSeed) {
  TraceSynthOptions options;
  options.duration_seconds = 5;
  auto a = SynthesizeTrace(options);
  auto b = SynthesizeTrace(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    ASSERT_DOUBLE_EQ(a->samples()[i].orientation.yaw,
                     b->samples()[i].orientation.yaw);
  }
  options.seed = 2;
  auto c = SynthesizeTrace(options);
  bool differs = false;
  for (size_t i = 0; i < a->size() && !differs; ++i) {
    differs = a->samples()[i].orientation.yaw !=
              c->samples()[i].orientation.yaw;
  }
  EXPECT_TRUE(differs);
}

TEST(TraceSynthesizerTest, ValidatesOptions) {
  TraceSynthOptions options;
  options.duration_seconds = -1;
  EXPECT_FALSE(SynthesizeTrace(options).ok());
  options = TraceSynthOptions{};
  options.sample_rate_hz = 0;
  EXPECT_FALSE(SynthesizeTrace(options).ok());
}

TEST(TraceSynthesizerTest, ArchetypesOrderedByActivity) {
  // Frantic viewers cover more angular distance than calm viewers.
  auto total_motion = [](const std::string& archetype) {
    auto options = ArchetypeOptions(archetype, 5);
    EXPECT_TRUE(options.ok());
    options->duration_seconds = 30;
    auto trace = SynthesizeTrace(*options);
    EXPECT_TRUE(trace.ok());
    double sum = 0;
    for (size_t i = 1; i < trace->size(); ++i) {
      sum += AngularDistance(trace->samples()[i - 1].orientation,
                             trace->samples()[i].orientation);
    }
    return sum;
  };
  double calm = total_motion("calm");
  double frantic = total_motion("frantic");
  EXPECT_LT(calm, frantic);
  EXPECT_FALSE(ArchetypeOptions("zen", 1).ok());
}

// -------------------------------------------------------------- Predictors

TEST(PredictorTest, FactoryAndNames) {
  TileGrid grid(4, 4);
  for (const char* name : {"static", "dead_reckoning", "linear_regression",
                           "ewma_velocity", "kalman", "markov"}) {
    auto p = MakePredictor(name, grid);
    ASSERT_TRUE(p.ok()) << name;
    EXPECT_EQ((*p)->name(), name);
  }
  EXPECT_FALSE(MakePredictor("psychic", grid).ok());
  EXPECT_EQ(AllPredictors(grid).size(), 6u);
}

TEST(PredictorTest, UnobservedPredictorsReturnDefault) {
  TileGrid grid(4, 4);
  for (auto& p : AllPredictors(grid)) {
    Orientation o = p->Predict(1.0);
    EXPECT_NEAR(o.pitch, kPi / 2, 1e-9) << p->name();
  }
}

TEST(PredictorTest, StaticPredictsLastObservation) {
  auto p = NewStaticPredictor();
  p->Observe(0.0, {1.0, 1.0});
  p->Observe(0.5, {2.0, 1.2});
  Orientation o = p->Predict(3.0);
  EXPECT_NEAR(o.yaw, 2.0, 1e-9);
  EXPECT_NEAR(o.pitch, 1.2, 1e-9);
}

TEST(PredictorTest, DeadReckoningExtrapolatesConstantVelocity) {
  auto p = NewDeadReckoningPredictor(0.5);
  // yaw moves +0.2 rad per 0.1 s.
  for (int i = 0; i <= 5; ++i) {
    p->Observe(0.1 * i, {WrapYaw(0.2 * i), kPi / 2});
  }
  Orientation o = p->Predict(1.0);
  EXPECT_NEAR(o.yaw, WrapYaw(1.0 + 2.0), 0.05);
}

TEST(PredictorTest, DeadReckoningCrossesSeam) {
  auto p = NewDeadReckoningPredictor(0.5);
  // Moving toward the seam at +1 rad/s starting near 2π.
  for (int i = 0; i <= 5; ++i) {
    p->Observe(0.1 * i, {WrapYaw(kTwoPi - 0.3 + 0.1 * i), kPi / 2});
  }
  Orientation o = p->Predict(0.5);
  // Expected: 2π - 0.3 + 0.5 + 0.5 → wraps to ≈ 0.7.
  EXPECT_NEAR(o.yaw, 0.7, 0.05);
}

TEST(PredictorTest, LinearRegressionFitsNoisyLine) {
  auto p = NewLinearRegressionPredictor(1.0);
  // pitch declines at 0.1 rad/s with small deterministic wobble.
  for (int i = 0; i <= 30; ++i) {
    double t = 0.033 * i;
    double wobble = 0.005 * ((i % 3) - 1);
    p->Observe(t, {1.0, kPi / 2 - 0.1 * t + wobble});
  }
  Orientation o = p->Predict(1.0);
  double expected_pitch = kPi / 2 - 0.1 * (0.033 * 30 + 1.0);
  EXPECT_NEAR(o.pitch, expected_pitch, 0.02);
}

TEST(PredictorTest, EwmaTracksVelocityChanges) {
  auto p = NewEwmaVelocityPredictor(0.5);
  for (int i = 0; i <= 20; ++i) {
    p->Observe(0.05 * i, {WrapYaw(0.05 * i * 0.8), kPi / 2});
  }
  Orientation o = p->Predict(1.0);
  EXPECT_NEAR(o.yaw, WrapYaw(0.8 + 0.8), 0.1);
}

TEST(PredictorTest, MarkovLearnsDwellPattern) {
  TileGrid grid(2, 4);
  auto p = NewMarkovPredictor(grid, 0.25);
  // Viewer parks in one tile for a long time: prediction stays there.
  Orientation home = grid.CenterOf({1, 2});
  for (int i = 0; i < 200; ++i) {
    p->Observe(0.1 * i, home);
  }
  Orientation predicted = p->Predict(2.0);
  EXPECT_EQ(grid.TileFor(predicted), grid.TileFor(home));
}

TEST(PredictorTest, MarkovLearnsCyclicMotion) {
  TileGrid grid(1, 4);
  auto p = NewMarkovPredictor(grid, 0.5);
  // Viewer cycles col 0 → 1 → 2 → 3 → 0, moving every Markov step (0.5 s),
  // so the learned chain is an unambiguous cycle.
  for (int step = 0; step < 160; ++step) {
    p->Observe(step * 0.5, grid.CenterOf({0, step % 4}));
  }
  // Last observation is col 3 (step 159); one step ahead is col 0, two
  // steps ahead col 1.
  EXPECT_EQ(grid.TileFor(p->Predict(0.5)).col, 0);
  EXPECT_EQ(grid.TileFor(p->Predict(1.0)).col, 1);
}

TEST(PredictorTest, KalmanConvergesOnConstantVelocity) {
  auto p = NewKalmanPredictor();
  // yaw at +0.4 rad/s, pitch fixed.
  for (int i = 0; i <= 60; ++i) {
    p->Observe(i / 30.0, {WrapYaw(0.4 * i / 30.0), kPi / 2});
  }
  Orientation o = p->Predict(1.0);
  EXPECT_NEAR(o.yaw, WrapYaw(0.8 + 0.4), 0.05);
  EXPECT_NEAR(o.pitch, kPi / 2, 0.01);
}

TEST(PredictorTest, KalmanSmoothsNoisyMeasurements) {
  // With deterministic zig-zag measurement noise of ±3°, the filtered
  // velocity should stay near the true 0.5 rad/s instead of swinging with
  // the per-sample differences (which dead reckoning over one step would).
  // Filter tuned for the injected noise level (σ ≈ 3°).
  auto kalman = NewKalmanPredictor(0.5, 3e-3);
  for (int i = 0; i <= 90; ++i) {
    double t = i / 30.0;
    double noise = (i % 2 == 0 ? 1 : -1) * DegToRad(3.0);
    kalman->Observe(t, {WrapYaw(0.5 * t + noise), kPi / 2});
  }
  Orientation o = kalman->Predict(1.0);
  EXPECT_NEAR(o.yaw, WrapYaw(0.5 * 3.0 + 0.5), DegToRad(6.0));
}

TEST(PredictorTest, KalmanCrossesSeam) {
  auto p = NewKalmanPredictor();
  for (int i = 0; i <= 30; ++i) {
    p->Observe(i / 30.0, {WrapYaw(kTwoPi - 0.3 + 0.6 * i / 30.0), kPi / 2});
  }
  Orientation o = p->Predict(0.5);
  EXPECT_NEAR(o.yaw, WrapYaw(kTwoPi - 0.3 + 0.6 + 0.3), 0.05);
}

// -------------------------------------------------------------- Popularity

TEST(PopularityTest, LearnsWhereViewersLook) {
  TileGrid grid(2, 4);
  PopularityModel model(grid, /*segment_seconds=*/1.0, /*segment_count=*/3);
  EXPECT_EQ(model.viewer_count(), 0);

  // Ten viewers: all stare at tile (1,2) in segment 0, split between
  // (0,0) and (1,2) in segment 1.
  Orientation hot = grid.CenterOf({1, 2});
  Orientation alt = grid.CenterOf({0, 0});
  for (int viewer = 0; viewer < 10; ++viewer) {
    std::vector<TraceSample> samples;
    for (int i = 0; i <= 90; ++i) {
      double t = i / 30.0;
      Orientation o = hot;
      if (t >= 1.0 && t < 2.0 && viewer % 2 == 0) o = alt;
      samples.push_back({t, o});
    }
    model.AddTrace(*HeadTrace::FromSamples(std::move(samples)));
  }
  EXPECT_EQ(model.viewer_count(), 10);
  EXPECT_GT(model.Probability(0, {1, 2}), 0.95);
  EXPECT_NEAR(model.Probability(1, {0, 0}), 0.5, 0.05);
  EXPECT_NEAR(model.Probability(1, {1, 2}), 0.5, 0.05);
  // (interpolation at the segment boundary may leak a sample or two)
  EXPECT_LT(model.Probability(0, {0, 0}), 0.05);

  // Coverage selection: 80% of segment 0 needs only the hot tile; segment 1
  // needs both.
  auto seg0 = model.PopularTiles(0, 0.8);
  ASSERT_EQ(seg0.size(), 1u);
  EXPECT_EQ(seg0[0], (TileId{1, 2}));
  auto seg1 = model.PopularTiles(1, 0.8);
  EXPECT_EQ(seg1.size(), 2u);
}

TEST(PopularityTest, EmptyModelBehaves) {
  TileGrid grid(2, 2);
  PopularityModel model(grid, 1.0, 2);
  EXPECT_EQ(model.Probability(0, {0, 0}), 0.0);
  EXPECT_TRUE(model.PopularTiles(0, 0.9).empty());
  EXPECT_TRUE(model.PopularTiles(-1, 0.9).empty());
  EXPECT_TRUE(model.PopularTiles(99, 0.9).empty());
}

TEST(PopularityTest, SerializeParseRoundTrip) {
  TileGrid grid(3, 5);
  PopularityModel model(grid, 0.5, 4);
  auto options = ArchetypeOptions("explorer", 3);
  options->duration_seconds = 2.0;
  model.AddTrace(*SynthesizeTrace(*options));
  model.AddTrace(*SynthesizeTrace(*options));

  auto bytes = model.Serialize();
  auto parsed = PopularityModel::Parse(Slice(bytes));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->viewer_count(), 2);
  EXPECT_EQ(parsed->segment_count(), 4);
  for (int segment = 0; segment < 4; ++segment) {
    for (int i = 0; i < grid.tile_count(); ++i) {
      EXPECT_DOUBLE_EQ(parsed->Probability(segment, grid.TileAt(i)),
                       model.Probability(segment, grid.TileAt(i)));
    }
  }
  // Truncated and trailing-byte corruption rejected.
  auto truncated = bytes;
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(PopularityModel::Parse(Slice(truncated)).ok());
  bytes.push_back(0);
  EXPECT_FALSE(PopularityModel::Parse(Slice(bytes)).ok());
}

TEST(PredictorTest, StaleObservationsIgnored) {
  auto p = NewStaticPredictor();
  p->Observe(1.0, {2.0, 1.5});
  p->Observe(0.5, {0.5, 0.5});  // stale: must not override
  Orientation o = p->Predict(0.0);
  EXPECT_NEAR(o.yaw, 2.0, 1e-9);
}

TEST(PredictorTest, ResetClearsState) {
  auto p = NewDeadReckoningPredictor();
  p->Observe(0.0, {1.0, 1.0});
  p->Observe(0.1, {1.5, 1.0});
  p->Reset();
  Orientation o = p->Predict(1.0);
  EXPECT_NEAR(o.pitch, kPi / 2, 1e-9);
  EXPECT_NEAR(o.yaw, 0.0, 1e-9);
}

// ---------------------------------------------------------------- Accuracy

TEST(AccuracyTest, PerfectPredictorOnConstantTrace) {
  std::vector<TraceSample> samples;
  for (int i = 0; i <= 300; ++i) {
    samples.push_back({i / 30.0, {1.5, kPi / 2}});
  }
  auto trace = HeadTrace::FromSamples(std::move(samples));
  ASSERT_TRUE(trace.ok());
  TileGrid grid(4, 4);
  auto p = NewStaticPredictor();
  AccuracyOptions options;
  PredictionAccuracy accuracy =
      EvaluatePredictor(p.get(), *trace, grid, options);
  EXPECT_GT(accuracy.evaluations, 0);
  EXPECT_NEAR(accuracy.mean_error_radians, 0.0, 1e-6);
  EXPECT_NEAR(accuracy.tile_hit_rate, 1.0, 1e-9);
}

TEST(AccuracyTest, MotionPredictorsBeatStaticOnSmoothMotion) {
  // Constant-velocity pan: extrapolation should beat persistence.
  std::vector<TraceSample> samples;
  for (int i = 0; i <= 900; ++i) {
    double t = i / 30.0;
    samples.push_back({t, {WrapYaw(0.5 * t), kPi / 2}});
  }
  auto trace = HeadTrace::FromSamples(std::move(samples));
  ASSERT_TRUE(trace.ok());
  TileGrid grid(4, 4);
  AccuracyOptions options;
  options.lookahead_seconds = 1.0;

  auto stat = NewStaticPredictor();
  auto dead = NewDeadReckoningPredictor();
  PredictionAccuracy static_acc =
      EvaluatePredictor(stat.get(), *trace, grid, options);
  PredictionAccuracy dead_acc =
      EvaluatePredictor(dead.get(), *trace, grid, options);
  EXPECT_LT(dead_acc.mean_error_radians, static_acc.mean_error_radians);
  EXPECT_NEAR(dead_acc.mean_error_radians, 0.0, 0.05);
  EXPECT_NEAR(static_acc.mean_error_radians, 0.5, 0.05);
}

TEST(AccuracyTest, ErrorGrowsWithLookahead) {
  auto options_r = ArchetypeOptions("explorer", 9);
  ASSERT_TRUE(options_r.ok());
  options_r->duration_seconds = 60;
  auto trace = SynthesizeTrace(*options_r);
  ASSERT_TRUE(trace.ok());
  TileGrid grid(4, 4);
  auto p = NewStaticPredictor();
  AccuracyOptions near_opts, far_opts;
  near_opts.lookahead_seconds = 0.25;
  far_opts.lookahead_seconds = 3.0;
  PredictionAccuracy near_acc =
      EvaluatePredictor(p.get(), *trace, grid, near_opts);
  PredictionAccuracy far_acc =
      EvaluatePredictor(p.get(), *trace, grid, far_opts);
  EXPECT_LT(near_acc.mean_error_radians, far_acc.mean_error_radians);
}

TEST(AccuracyTest, EmptyTraceYieldsZeroEvaluations) {
  TileGrid grid(2, 2);
  auto p = NewStaticPredictor();
  PredictionAccuracy accuracy =
      EvaluatePredictor(p.get(), HeadTrace(), grid, AccuracyOptions{});
  EXPECT_EQ(accuracy.evaluations, 0);
}

}  // namespace
}  // namespace vc
