#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "streaming/adaptation.h"
#include "streaming/manifest.h"
#include "streaming/network.h"
#include "streaming/qoe.h"

namespace vc {
namespace {

// ---------------------------------------------------------------- Network

TEST(NetworkTest, OptionsValidation) {
  NetworkOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.bandwidth_bps = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = NetworkOptions{};
  options.latency_seconds = -1;
  EXPECT_FALSE(options.Validate().ok());
  options = NetworkOptions{};
  options.jitter = 2.0;
  EXPECT_FALSE(options.Validate().ok());
  options = NetworkOptions{};
  options.bandwidth_trace = {{5.0, 1e6}, {2.0, 2e6}};  // unsorted
  EXPECT_FALSE(options.Validate().ok());
}

TEST(NetworkTest, SteadyTransferTime) {
  NetworkOptions options;
  options.bandwidth_bps = 8e6;  // 1 MB/s
  options.latency_seconds = 0.05;
  auto net = NetworkSimulator::Create(options);
  ASSERT_TRUE(net.ok());
  TransferResult done = net->Transfer(0.0, 1'000'000);
  EXPECT_NEAR(done.completion_time, 0.05 + 1.0, 1e-9);
  EXPECT_EQ(done.delivered_bytes, 1'000'000u);
  EXPECT_FALSE(done.faulted);
  EXPECT_EQ(net->total_bytes(), 1'000'000u);
  EXPECT_EQ(net->request_count(), 1u);
}

TEST(NetworkTest, BandwidthTraceSteps) {
  NetworkOptions options;
  options.bandwidth_bps = 8e6;
  options.latency_seconds = 0.0;
  options.bandwidth_trace = {{1.0, 4e6}};  // halves after t=1
  auto net = NetworkSimulator::Create(options);
  ASSERT_TRUE(net.ok());
  EXPECT_DOUBLE_EQ(net->BandwidthAt(0.5), 8e6);
  EXPECT_DOUBLE_EQ(net->BandwidthAt(2.0), 4e6);
  // 2 MB starting at t=0: first 1 s moves 1 MB, remaining 1 MB at 0.5 MB/s.
  double done = net->Transfer(0.0, 2'000'000).completion_time;
  EXPECT_NEAR(done, 1.0 + 2.0, 1e-9);
}

TEST(NetworkTest, JitterIsDeterministicPerSeed) {
  NetworkOptions options;
  options.jitter = 0.2;
  options.seed = 99;
  auto a = NetworkSimulator::Create(options);
  auto b = NetworkSimulator::Create(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a->Transfer(i * 10.0, 500'000).completion_time,
                     b->Transfer(i * 10.0, 500'000).completion_time);
  }
}

TEST(NetworkTest, LongTraceIntegratesPastStepLimit) {
  // Regression: the integrator used to bail after a fixed step budget
  // (10k) and silently return the truncated time-so-far instead of the
  // completion time. A trace with more steps than the old budget must
  // still integrate exactly.
  NetworkOptions options;
  options.bandwidth_bps = 1e6;
  options.latency_seconds = 0.0;
  for (int i = 1; i <= 20'000; ++i) {
    options.bandwidth_trace.emplace_back(i * 1e-3, 1e6);  // constant rate
  }
  auto net = NetworkSimulator::Create(options);
  ASSERT_TRUE(net.ok());
  // 3.75 MB at 1 Mbps = 30 s, spanning all 20k trace steps. The pre-fix
  // code returned ~10 s (the time reached when the step budget ran out).
  double done = net->Transfer(0.0, 3'750'000).completion_time;
  EXPECT_NEAR(done, 30.0, 1e-6);
  // A transfer completing between trace steps still lands exactly.
  EXPECT_NEAR(net->Transfer(0.0, 1'000).completion_time, 0.008, 1e-9);
}

TEST(NetworkTest, TransferPastEndOfTraceUsesLastRate) {
  NetworkOptions options;
  options.bandwidth_bps = 8e6;
  options.latency_seconds = 0.0;
  options.bandwidth_trace = {{1.0, 4e6}, {2.0, 2e6}};
  auto net = NetworkSimulator::Create(options);
  ASSERT_TRUE(net.ok());
  // Starting after every trace step: the last rate applies analytically.
  EXPECT_NEAR(net->Transfer(10.0, 1'000'000).completion_time, 10.0 + 4.0,
              1e-9);
}

TEST(NetworkTest, ResetStatsKeepsModel) {
  auto net = NetworkSimulator::Create(NetworkOptions{});
  ASSERT_TRUE(net.ok());
  net->Transfer(0, 1000);
  net->ResetStats();
  EXPECT_EQ(net->total_bytes(), 0u);
  EXPECT_EQ(net->request_count(), 0u);
  EXPECT_EQ(net->fault_count(), 0u);
}

// ----------------------------------------------------------- Fault injection

TEST(NetworkTest, FaultOptionsValidation) {
  NetworkOptions options;
  options.faults.episodes_per_minute = 6;
  EXPECT_TRUE(options.Validate().ok());
  options.faults.collapse_factor = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options.faults = FaultInjectionOptions{};
  options.faults.episodes_per_minute = 6;
  options.faults.timeout_seconds = -1;
  EXPECT_FALSE(options.Validate().ok());
  // Out-of-range values are ignored while injection is disabled.
  options.faults = FaultInjectionOptions{};
  options.faults.timeout_seconds = -1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(NetworkTest, FaultScheduleIsDeterministicPerSeed) {
  NetworkOptions options;
  options.faults.episodes_per_minute = 30;
  options.faults.seed = 7;
  auto a = NetworkSimulator::Create(options);
  auto b = NetworkSimulator::Create(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  int faults = 0;
  for (int i = 0; i < 200; ++i) {
    TransferResult ra = a->Transfer(i * 1.0, 100'000);
    TransferResult rb = b->Transfer(i * 1.0, 100'000);
    EXPECT_DOUBLE_EQ(ra.completion_time, rb.completion_time);
    EXPECT_EQ(ra.faulted, rb.faulted);
    if (ra.faulted) ++faults;
  }
  EXPECT_GT(faults, 0) << "30 episodes/min over 200 s must hit something";
  EXPECT_EQ(a->fault_count(), static_cast<uint64_t>(faults));
}

TEST(NetworkTest, DroppedRequestTimesOutDeliveringNothing) {
  NetworkOptions options;
  options.latency_seconds = 0.0;
  options.faults.episodes_per_minute = 60;
  options.faults.timeout_seconds = 1.5;
  auto net = NetworkSimulator::Create(options);
  ASSERT_TRUE(net.ok());
  // Find a drop episode in the generated schedule and issue inside it.
  const FaultEpisode* drop = nullptr;
  for (double t = 0; t < 600 && drop == nullptr; t += 0.05) {
    const FaultEpisode* e = net->EpisodeAt(t);
    if (e != nullptr && e->kind == FaultKind::kDrop) drop = e;
  }
  ASSERT_NE(drop, nullptr) << "schedule has no drop episode in 600 s";
  TransferResult r = net->Transfer(drop->start, 1'000'000);
  EXPECT_TRUE(r.faulted);
  EXPECT_EQ(r.delivered_bytes, 0u);
  EXPECT_NEAR(r.completion_time, drop->start + 1.5, 1e-9);
  EXPECT_EQ(net->total_bytes(), 0u);  // nothing delivered
  EXPECT_EQ(net->fault_count(), 1u);
}

TEST(NetworkTest, StallEpisodeDelaysAndCollapseSlowsService) {
  NetworkOptions options;
  options.bandwidth_bps = 8e6;  // 1 MB/s
  options.latency_seconds = 0.0;
  options.faults.episodes_per_minute = 60;
  options.faults.collapse_factor = 0.25;
  auto net = NetworkSimulator::Create(options);
  ASSERT_TRUE(net.ok());
  const FaultEpisode* stall = nullptr;
  const FaultEpisode* collapse = nullptr;
  for (double t = 0; t < 600; t += 0.05) {
    const FaultEpisode* e = net->EpisodeAt(t);
    if (e == nullptr) continue;
    if (e->kind == FaultKind::kStall) stall = e;
    if (e->kind == FaultKind::kCollapse) collapse = e;
    if (stall != nullptr && collapse != nullptr) break;
  }
  ASSERT_NE(stall, nullptr);
  ASSERT_NE(collapse, nullptr);
  // Stall: service begins at episode end, then runs at full rate.
  TransferResult rs = net->Transfer(stall->start, 1'000'000);
  EXPECT_FALSE(rs.faulted);
  EXPECT_NEAR(rs.completion_time, stall->end() + 1.0, 1e-9);
  // Collapse: the transfer runs at collapse_factor × bandwidth.
  TransferResult rc = net->Transfer(collapse->start, 1'000'000);
  EXPECT_FALSE(rc.faulted);
  EXPECT_NEAR(rc.completion_time, collapse->start + 4.0, 1e-9);
}

// -------------------------------------------------------------- Adaptation

TEST(AdaptationTest, ThroughputEstimatorConverges) {
  ThroughputEstimator estimator(0.5, 1e6);
  for (int i = 0; i < 20; ++i) {
    estimator.AddSample(1'000'000, 1.0);  // 8 Mbps observed
  }
  EXPECT_NEAR(estimator.estimate_bps(), 8e6, 1e5);
  estimator.AddSample(0, 0.0);  // degenerate sample ignored
  EXPECT_NEAR(estimator.estimate_bps(), 8e6, 1e5);
}

TEST(AdaptationTest, PickQualityForBudget) {
  std::vector<uint64_t> sizes = {1000, 500, 100};  // best → worst
  EXPECT_EQ(PickQualityForBudget(sizes, 2000), 0);
  EXPECT_EQ(PickQualityForBudget(sizes, 600), 1);
  EXPECT_EQ(PickQualityForBudget(sizes, 150), 2);
  EXPECT_EQ(PickQualityForBudget(sizes, 10), 2);  // nothing fits: lowest
}

TEST(AdaptationTest, PickQualityForBudgetEmptyLadderIsIndexSafe) {
  // Regression: an empty ladder used to return -1, which callers then used
  // to index the quality ladder.
  EXPECT_EQ(PickQualityForBudget({}, 1000.0), 0);
  EXPECT_EQ(PickQualityForBudget({}, 0.0), 0);
}

TEST(AdaptationTest, ThroughputEstimatorClampsTinyDurations) {
  // Regression: near-zero-duration samples (cache-served segments) used to
  // be silently discarded; worse, slightly-larger-but-tiny durations were
  // trusted verbatim and biased the EWMA sky-high. Durations below the
  // floor now clamp to it and are counted.
  Counter* clamped =
      MetricRegistry::Global().GetCounter("adaptation.samples_clamped");
  Counter* discarded =
      MetricRegistry::Global().GetCounter("adaptation.samples_discarded");
  uint64_t clamped_before = clamped->Value();
  uint64_t discarded_before = discarded->Value();

  ThroughputEstimator estimator(0.5, 1e6);
  estimator.AddSample(1'000'000, 1e-7);  // clamped to the 1 ms floor
  // 1 MB over (clamped) 1 ms = 8e9 bps; the raw 1e-7 s sample would have
  // read as 8e13 bps.
  EXPECT_NEAR(estimator.estimate_bps(), 0.5 * 1e6 + 0.5 * 8e9, 1e3);
  EXPECT_EQ(clamped->Value(), clamped_before + 1);

  // Degenerate samples are discarded (estimate unchanged) and counted.
  double before_bps = estimator.estimate_bps();
  estimator.AddSample(0, 1.0);
  estimator.AddSample(1000, 0.0);
  estimator.AddSample(1000, -1.0);
  EXPECT_EQ(estimator.estimate_bps(), before_bps);
  EXPECT_EQ(discarded->Value(), discarded_before + 3);
}

TEST(AdaptationTest, SegmentByteBudget) {
  // 8 Mbps for 1 s at safety 0.85 = 850 KB.
  EXPECT_NEAR(SegmentByteBudget(8e6, 1.0, 0.85), 850'000, 1);
}

// ---------------------------------------------------------------- Manifest

VideoMetadata ManifestSample() {
  VideoMetadata m;
  m.name = "venice";
  m.version = 3;
  m.width = 256;
  m.height = 128;
  m.fps_times_100 = 1500;
  m.frames_per_segment = 15;
  m.tile_rows = 2;
  m.tile_cols = 4;
  m.spherical.stereo = StereoMode::kStereoTopBottom;
  m.ladder = {{"high", 14}, {"low", 42}};
  m.segments = {{0, 15}, {15, 15}, {30, 7}};
  m.cells.resize(3 * 8 * 2);
  for (size_t i = 0; i < m.cells.size(); ++i) {
    m.cells[i] = CellInfo{1000 + i * 13, static_cast<uint32_t>(0xAB00 + i)};
  }
  return m;
}

TEST(ManifestTest, RoundTripsAllFields) {
  VideoMetadata m = ManifestSample();
  std::string text = GenerateManifest(m);
  auto parsed = ParseManifest(Slice(text));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->name, m.name);
  EXPECT_EQ(parsed->version, m.version);
  EXPECT_EQ(parsed->width, m.width);
  EXPECT_EQ(parsed->height, m.height);
  EXPECT_EQ(parsed->fps_times_100, m.fps_times_100);
  EXPECT_EQ(parsed->frames_per_segment, m.frames_per_segment);
  EXPECT_EQ(parsed->tile_rows, m.tile_rows);
  EXPECT_EQ(parsed->tile_cols, m.tile_cols);
  EXPECT_EQ(parsed->spherical.stereo, m.spherical.stereo);
  EXPECT_EQ(parsed->ladder, m.ladder);
  ASSERT_EQ(parsed->segments.size(), m.segments.size());
  ASSERT_EQ(parsed->cells.size(), m.cells.size());
  for (size_t i = 0; i < m.cells.size(); ++i) {
    EXPECT_EQ(parsed->cells[i].byte_size, m.cells[i].byte_size);
    EXPECT_EQ(parsed->cells[i].crc32, m.cells[i].crc32);
  }
}

TEST(ManifestTest, IgnoresCommentsAndBlankLines) {
  std::string text = GenerateManifest(ManifestSample());
  text = "# a comment\n\n" + text + "# trailing comment\n";
  EXPECT_TRUE(ParseManifest(Slice(text)).ok());
}

TEST(ManifestTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseManifest(Slice(std::string(""))).ok());
  EXPECT_FALSE(ParseManifest(Slice(std::string("BOGUS 1\n"))).ok());
  std::string text = GenerateManifest(ManifestSample());
  // Drop one cell line → count mismatch.
  size_t last_cell = text.rfind("cell ");
  std::string missing = text.substr(0, last_cell);
  EXPECT_FALSE(ParseManifest(Slice(missing)).ok());
  // Duplicate a cell line.
  std::string duplicated = text + text.substr(last_cell);
  EXPECT_FALSE(ParseManifest(Slice(duplicated)).ok());
  // Unknown keyword.
  std::string unknown = text + "frobnicate 1\n";
  EXPECT_FALSE(ParseManifest(Slice(unknown)).ok());
}

TEST(ManifestTest, BuilderMatchesGenerateManifest) {
  // GenerateManifest is a thin wrapper over ManifestBuilder; the whole-
  // string and incremental paths must be byte-identical for static videos.
  VideoMetadata m = ManifestSample();
  EXPECT_EQ(ManifestBuilder(m).Build(), GenerateManifest(m));
  ManifestPlan plan;
  plan.entries.push_back({0, std::vector<int>(8, 0)});
  plan.entries.push_back({2, {0, 1, 0, 1, -1, 1, 0, 0}});
  EXPECT_EQ(ManifestBuilder(m, &plan).Build(), GenerateManifest(m, &plan));
}

TEST(ManifestTest, BuilderGrowsIncrementally) {
  // Appending segments to a layout-only builder reproduces, at every step,
  // the canonical manifest of the video grown to that point — so a live
  // manifest is always exactly what a cold regeneration would produce.
  VideoMetadata full = ManifestSample();
  VideoMetadata layout = full;
  layout.segments.clear();
  layout.cells.clear();
  const size_t per_segment =
      static_cast<size_t>(full.tile_count()) * full.quality_count();
  ManifestBuilder builder(layout);
  for (int s = 0; s < full.segment_count(); ++s) {
    std::vector<CellInfo> cells(
        full.cells.begin() + full.CellIndex(s, 0, 0),
        full.cells.begin() + full.CellIndex(s, 0, 0) + per_segment);
    std::string delta =
        builder.AppendSegment(full.segments[s], cells, 1200 + s * 1000);
    EXPECT_NE(delta.find("segment " + std::to_string(s)), std::string::npos);
    EXPECT_NE(delta.find("publish " + std::to_string(s)), std::string::npos);
    EXPECT_EQ(builder.segment_count(), s + 1);

    VideoMetadata grown = full;
    grown.segments.resize(s + 1);
    grown.cells.resize((s + 1) * per_segment);
    EXPECT_EQ(builder.Build(),
              GenerateManifest(grown, nullptr, &builder.live()));

    ManifestLive live;
    auto parsed = ParseManifest(Slice(builder.Build()), nullptr, &live);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->segment_count(), s + 1);
    EXPECT_EQ(live.epoch, static_cast<uint32_t>(s + 1));
    ASSERT_EQ(live.publish_times_ms.size(), static_cast<size_t>(s + 1));
    EXPECT_EQ(live.publish_times_ms[s], 1200 + s * 1000);
    EXPECT_FALSE(live.complete);
  }
  builder.SetComplete(true);
  ManifestLive live;
  ASSERT_TRUE(ParseManifest(Slice(builder.Build()), nullptr, &live).ok());
  EXPECT_TRUE(live.complete);
}

TEST(ManifestTest, LiveOverlayRoundTripsByteIdentically) {
  VideoMetadata m = ManifestSample();
  ManifestLive live;
  live.epoch = 3;
  live.complete = true;
  live.publish_times_ms = {1200, 2200, 3250};
  std::string text = GenerateManifest(m, nullptr, &live);
  ManifestLive parsed_live;
  auto parsed = ParseManifest(Slice(text), nullptr, &parsed_live);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed_live.epoch, 3u);
  EXPECT_TRUE(parsed_live.complete);
  EXPECT_EQ(parsed_live.publish_times_ms, live.publish_times_ms);
  EXPECT_EQ(GenerateManifest(*parsed, nullptr, &parsed_live), text);
  // A static parse of the same text ignores the overlay without error.
  EXPECT_TRUE(ParseManifest(Slice(text)).ok());
}

TEST(ManifestTest, RejectsBadLiveOverlay) {
  std::string base = GenerateManifest(ManifestSample());
  // Publish entries require the live line.
  EXPECT_FALSE(ParseManifest(Slice(base + "publish 0 100\n")).ok());
  // The overlay must publish every segment (the sample has 3).
  EXPECT_FALSE(
      ParseManifest(Slice(base + "live 1 0\npublish 0 100\n")).ok());
  std::string good =
      base + "live 3 1\npublish 0 100\npublish 1 200\npublish 2 300\n";
  EXPECT_TRUE(ParseManifest(Slice(good)).ok());
  // Duplicate live line.
  EXPECT_FALSE(ParseManifest(Slice(good + "live 3 1\n")).ok());
  // Publish indices must be dense and times non-negative, non-decreasing.
  EXPECT_FALSE(ParseManifest(Slice(
      base + "live 3 1\npublish 1 100\npublish 0 100\npublish 2 100\n"))
          .ok());
  EXPECT_FALSE(ParseManifest(Slice(
      base + "live 3 0\npublish 0 -5\npublish 1 1\npublish 2 2\n"))
          .ok());
  EXPECT_FALSE(ParseManifest(Slice(
      base + "live 3 0\npublish 0 500\npublish 1 400\npublish 2 600\n"))
          .ok());
}

// -------------------------------------------------------------------- QoE

TEST(QoeTest, BandwidthSavings) {
  SessionStats baseline, candidate;
  baseline.bytes_sent = 1000;
  candidate.bytes_sent = 400;
  EXPECT_NEAR(BandwidthSavings(baseline, candidate), 0.6, 1e-9);
  baseline.bytes_sent = 0;
  EXPECT_EQ(BandwidthSavings(baseline, candidate), 0.0);
}

TEST(QoeTest, MeanBitrate) {
  SessionStats stats;
  stats.bytes_sent = 1'000'000;
  stats.duration_seconds = 10.0;
  EXPECT_NEAR(stats.MeanBitrateBps(), 800'000, 1e-6);
  stats.duration_seconds = 0;
  EXPECT_EQ(stats.MeanBitrateBps(), 0.0);
}

}  // namespace
}  // namespace vc
