#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/bitio.h"
#include "common/crc32.h"
#include "common/env.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace vc {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing video");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing video");
  EXPECT_EQ(s.ToString(), "NotFound: missing video");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

Status ReturnsEarly(bool fail) {
  VC_RETURN_IF_ERROR(fail ? Status::Aborted("stop") : Status::OK());
  return Status::InvalidArgument("fell through");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(ReturnsEarly(true).IsAborted());
  EXPECT_TRUE(ReturnsEarly(false).IsInvalidArgument());
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(42), 42);
}

Result<int> Doubles(int v) {
  int parsed;
  VC_ASSIGN_OR_RETURN(parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubles(21), 42);
  EXPECT_TRUE(Doubles(0).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ----------------------------------------------------------------- Slice

TEST(SliceTest, BasicViews) {
  std::string s = "abcdef";
  Slice slice(s);
  EXPECT_EQ(slice.size(), 6u);
  EXPECT_EQ(slice[0], 'a');
  slice.RemovePrefix(2);
  EXPECT_EQ(slice.ToString(), "cdef");
  EXPECT_EQ(slice.Subslice(1, 2).ToString(), "de");
}

TEST(SliceTest, Equality) {
  std::string a = "same", b = "same", c = "diff";
  EXPECT_EQ(Slice(a), Slice(b));
  EXPECT_FALSE(Slice(a) == Slice(c));
  EXPECT_EQ(Slice(), Slice());
}

// ----------------------------------------------------------------- BitIO

TEST(BitIoTest, FixedWidthRoundTrip) {
  BitWriter writer;
  writer.WriteBits(0b101, 3);
  writer.WriteBits(0xdead, 16);
  writer.WriteBits(1, 1);
  writer.WriteBits(0x123456789abcdefull, 64);
  auto bytes = writer.Finish();

  BitReader reader{Slice(bytes)};
  uint64_t v;
  ASSERT_TRUE(reader.ReadBits(3, &v).ok());
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(reader.ReadBits(16, &v).ok());
  EXPECT_EQ(v, 0xdeadu);
  ASSERT_TRUE(reader.ReadBits(1, &v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(reader.ReadBits(64, &v).ok());
  EXPECT_EQ(v, 0x123456789abcdefull);
}

TEST(BitIoTest, ExpGolombRoundTrip) {
  BitWriter writer;
  for (uint64_t v : {0ull, 1ull, 2ull, 5ull, 255ull, 4096ull, 1234567ull}) {
    writer.WriteUE(v);
  }
  for (int64_t v : {0ll, 1ll, -1ll, 17ll, -1000ll, 65535ll, -65536ll}) {
    writer.WriteSE(v);
  }
  auto bytes = writer.Finish();

  BitReader reader{Slice(bytes)};
  for (uint64_t expected :
       {0ull, 1ull, 2ull, 5ull, 255ull, 4096ull, 1234567ull}) {
    uint64_t v;
    ASSERT_TRUE(reader.ReadUE(&v).ok());
    EXPECT_EQ(v, expected);
  }
  for (int64_t expected : {0ll, 1ll, -1ll, 17ll, -1000ll, 65535ll, -65536ll}) {
    int64_t v;
    ASSERT_TRUE(reader.ReadSE(&v).ok());
    EXPECT_EQ(v, expected);
  }
}

TEST(BitIoTest, AlignmentAndBytes) {
  BitWriter writer;
  writer.WriteBits(1, 1);
  writer.AlignToByte();
  std::vector<uint8_t> raw = {1, 2, 3};
  writer.WriteBytes(Slice(raw));
  auto bytes = writer.Finish();
  EXPECT_EQ(bytes.size(), 4u);

  BitReader reader{Slice(bytes)};
  uint64_t v;
  ASSERT_TRUE(reader.ReadBits(1, &v).ok());
  reader.AlignToByte();
  std::vector<uint8_t> out;
  ASSERT_TRUE(reader.ReadBytes(3, &out).ok());
  EXPECT_EQ(out, raw);
}

TEST(BitIoTest, ReadPastEndFails) {
  std::vector<uint8_t> one = {0xff};
  BitReader reader{Slice(one)};
  uint64_t v;
  ASSERT_TRUE(reader.ReadBits(8, &v).ok());
  EXPECT_TRUE(reader.ReadBits(1, &v).IsOutOfRange());
}

TEST(BitIoTest, UnterminatedGolombIsCorruption) {
  // All zeros never yields a terminating 1 bit.
  std::vector<uint8_t> zeros(20, 0);
  BitReader reader{Slice(zeros)};
  uint64_t v;
  Status s = reader.ReadUE(&v);
  EXPECT_FALSE(s.ok());
}

TEST(BitIoTest, ReadPastEndIsSticky) {
  // Once any read fails, the reader stays failed: later reads fail too even
  // if bits technically remain. Decoders probe multi-bit fields near the end
  // of truncated payloads; without stickiness a short read could "succeed"
  // on stale data and mask the corruption.
  std::vector<uint8_t> one = {0xff};
  BitReader reader{Slice(one)};
  uint64_t v;
  ASSERT_TRUE(reader.ReadBits(4, &v).ok());
  EXPECT_FALSE(reader.failed());
  EXPECT_TRUE(reader.ReadBits(8, &v).IsOutOfRange());  // 4 bits short
  EXPECT_TRUE(reader.failed());
  // The remaining 4 bits must no longer be readable.
  EXPECT_TRUE(reader.ReadBits(1, &v).IsOutOfRange());
  EXPECT_TRUE(reader.ReadBits(0, &v).IsOutOfRange());
  bool bit;
  EXPECT_TRUE(reader.ReadBit(&bit).IsOutOfRange());
  EXPECT_TRUE(reader.ReadUE(&v).IsOutOfRange());
  EXPECT_TRUE(reader.SkipBits(1).IsOutOfRange());
  EXPECT_EQ(reader.PeekBits(8), 0u);
}

TEST(BitIoTest, NegativeOrOversizedBitCountFails) {
  // A decoder computing a field width from stream data can end up with a
  // negative or oversized count; that must be a hard (and sticky) error, not
  // an assert that vanishes in Release builds and wraps the bounds check.
  std::vector<uint8_t> bytes(8, 0xff);
  {
    BitReader reader{Slice(bytes)};
    uint64_t v;
    EXPECT_TRUE(reader.ReadBits(-1, &v).IsInvalidArgument());
    EXPECT_TRUE(reader.failed());
    EXPECT_TRUE(reader.ReadBits(8, &v).IsOutOfRange());  // sticky
  }
  {
    BitReader reader{Slice(bytes)};
    uint64_t v;
    EXPECT_TRUE(reader.ReadBits(65, &v).IsInvalidArgument());
    EXPECT_TRUE(reader.failed());
  }
  {
    BitReader reader{Slice(bytes)};
    EXPECT_TRUE(reader.SkipBits(-1).IsInvalidArgument());
    EXPECT_TRUE(reader.failed());
  }
}

TEST(BitIoTest, CorruptGolombIsSticky) {
  std::vector<uint8_t> zeros(20, 0);
  BitReader reader{Slice(zeros)};
  uint64_t v;
  EXPECT_TRUE(reader.ReadUE(&v).IsCorruption());
  EXPECT_TRUE(reader.failed());
  EXPECT_TRUE(reader.ReadBits(8, &v).IsOutOfRange());
}

TEST(BitIoTest, PeekDoesNotAdvanceAndZeroPads) {
  BitWriter writer;
  writer.WriteBits(0xA5, 8);
  writer.WriteBits(0x3, 2);
  auto bytes = writer.Finish();  // 0xA5, 0b11...... (10 data bits)
  BitReader reader{Slice(bytes)};
  EXPECT_EQ(reader.PeekBits(8), 0xA5u);
  EXPECT_EQ(reader.PeekBits(8), 0xA5u);  // no advance
  EXPECT_EQ(reader.PeekBits(4), 0xAu);
  // Peeking past the end zero-pads instead of failing: decoders peek a full
  // LUT window near the end of a valid stream whose last code is short.
  EXPECT_EQ(reader.PeekBits(57) >> 47, 0x297u);  // 0xA5 0xC0 0x00... top 10
  EXPECT_FALSE(reader.failed());
  ASSERT_TRUE(reader.SkipBits(8).ok());
  EXPECT_EQ(reader.PeekBits(2), 0x3u);
  // Unaligned peeks assemble across byte boundaries.
  ASSERT_TRUE(reader.SkipBits(1).ok());
  EXPECT_EQ(reader.PeekBits(1), 0x1u);
}

TEST(BitIoTest, SkipPastEndFails) {
  std::vector<uint8_t> two = {0x12, 0x34};
  BitReader reader{Slice(two)};
  ASSERT_TRUE(reader.SkipBits(15).ok());
  EXPECT_TRUE(reader.SkipBits(2).IsOutOfRange());
  EXPECT_TRUE(reader.failed());
}

TEST(BitIoTest, PeekMatchesRead) {
  Random rng(404);
  BitWriter writer;
  for (int i = 0; i < 64; ++i) {
    int width = 1 + i % 13;
    writer.WriteBits(rng.Next() & ((uint64_t{1} << width) - 1), width);
  }
  auto bytes = writer.Finish();
  BitReader peeker{Slice(bytes)};
  BitReader reader{Slice(bytes)};
  for (int i = 0; i < 64; ++i) {
    int width = 1 + i % 13;
    uint64_t peeked = peeker.PeekBits(width);
    ASSERT_TRUE(peeker.SkipBits(width).ok());
    uint64_t read;
    ASSERT_TRUE(reader.ReadBits(width, &read).ok());
    ASSERT_EQ(peeked, read) << "offset " << i;
  }
}

// Property: random UE/SE sequences round-trip.
TEST(BitIoTest, RandomizedRoundTrip) {
  Random rng(777);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int64_t> values;
    BitWriter writer;
    for (int i = 0; i < 100; ++i) {
      int64_t v = static_cast<int64_t>(rng.Next() % 100000) - 50000;
      values.push_back(v);
      writer.WriteSE(v);
    }
    auto bytes = writer.Finish();
    BitReader reader{Slice(bytes)};
    for (int64_t expected : values) {
      int64_t v;
      ASSERT_TRUE(reader.ReadSE(&v).ok());
      ASSERT_EQ(v, expected);
    }
  }
}

// ----------------------------------------------------------------- CRC32

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (classic check value).
  std::string s = "123456789";
  EXPECT_EQ(Crc32(Slice(s)), 0xCBF43926u);
}

TEST(Crc32Test, DetectsCorruption) {
  std::vector<uint8_t> data(100, 7);
  uint32_t clean = Crc32(Slice(data));
  data[50] ^= 1;
  EXPECT_NE(clean, Crc32(Slice(data)));
}

// ---------------------------------------------------------------- Random

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformDoubleInRange) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RandomTest, GaussianMoments) {
  Random rng(31337);
  double sum = 0, sum_sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

// ------------------------------------------------------------------- Env

TEST(MemEnvTest, WriteReadRoundTrip) {
  auto env = NewMemEnv();
  std::string contents = "hello world";
  ASSERT_TRUE(env->WriteFile("/a/b/file.txt", Slice(contents)).ok());
  auto read = env->ReadFile("/a/b/file.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Slice(*read).ToString(), contents);
  EXPECT_TRUE(env->FileExists("/a/b/file.txt"));
  EXPECT_FALSE(env->FileExists("/a/b/other.txt"));
}

TEST(MemEnvTest, RangeReads) {
  auto env = NewMemEnv();
  std::string contents = "0123456789";
  ASSERT_TRUE(env->WriteFile("/f", Slice(contents)).ok());
  auto range = env->ReadFileRange("/f", 3, 4);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(Slice(*range).ToString(), "3456");
  EXPECT_TRUE(env->ReadFileRange("/f", 8, 5).status().IsOutOfRange());
}

TEST(MemEnvTest, ListAndDelete) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->WriteFile("/dir/x", Slice("1", 1)).ok());
  ASSERT_TRUE(env->WriteFile("/dir/y", Slice("2", 1)).ok());
  ASSERT_TRUE(env->WriteFile("/dir/sub/z", Slice("3", 1)).ok());
  auto names = env->ListDir("/dir");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 3u);  // x, y, sub
  ASSERT_TRUE(env->DeleteFile("/dir/x").ok());
  EXPECT_FALSE(env->FileExists("/dir/x"));
  ASSERT_TRUE(env->RemoveDirRecursive("/dir").ok());
  EXPECT_FALSE(env->FileExists("/dir/y"));
}

TEST(MemEnvTest, AppendAndRename) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->AppendFile("/log", Slice("ab", 2)).ok());
  ASSERT_TRUE(env->AppendFile("/log", Slice("cd", 2)).ok());
  auto size = env->FileSize("/log");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 4u);
  ASSERT_TRUE(env->RenameFile("/log", "/log2").ok());
  EXPECT_FALSE(env->FileExists("/log"));
  EXPECT_TRUE(env->FileExists("/log2"));
}

TEST(PosixEnvTest, RoundTripInTempDir) {
  Env* env = Env::Default();
  std::string dir = ::testing::TempDir() + "/vc_env_test";
  ASSERT_TRUE(env->CreateDirs(dir + "/nested").ok());
  ASSERT_TRUE(env->WriteFile(dir + "/nested/f.bin", Slice("xyz", 3)).ok());
  auto read = env->ReadFile(dir + "/nested/f.bin");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(Slice(*read).ToString(), "xyz");
  auto range = env->ReadFileRange(dir + "/nested/f.bin", 1, 1);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ((*range)[0], 'y');
  ASSERT_TRUE(env->RemoveDirRecursive(dir).ok());
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitRefusedAfterShutdown) {
  // Regression: Submit used to enqueue unconditionally, so tasks posted
  // after shutdown were accepted and silently dropped.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.WaitIdle();
  // Every accepted task ran; the refused one did not.
  EXPECT_EQ(counter.load(), 10);
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, HighLaneDrainsBeforeLowLane) {
  // One worker, blocked on a gate while both lanes fill up: on release,
  // every high-priority task must run before any low-priority one, even
  // though the low tasks were submitted first.
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  for (int i = 0; i < 3; ++i) {
    pool.Submit(
        [&order, &mu, i] {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(100 + i);
        },
        TaskPriority::kLow);
  }
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&order, &mu, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.WaitIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 100, 101, 102}));
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

// ------------------------------------------------------------- MathUtil

TEST(MathUtilTest, ClampAndAlign) {
  EXPECT_EQ(Clamp(5, 0, 10), 5);
  EXPECT_EQ(Clamp(-1, 0, 10), 0);
  EXPECT_EQ(Clamp(11, 0, 10), 10);
  EXPECT_EQ(AlignUp(17, 16), 32);
  EXPECT_EQ(AlignUp(16, 16), 16);
  EXPECT_EQ(CeilDiv(7, 2), 4);
  EXPECT_EQ(ClampPixel(-5), 0);
  EXPECT_EQ(ClampPixel(300), 255);
  EXPECT_EQ(ClampPixel(128), 128);
}

}  // namespace
}  // namespace vc
